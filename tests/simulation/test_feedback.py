"""The latency feedback loop: window maintenance, engine wiring, consumers.

Three layers under test:

* :class:`~repro.simulation.events.LatencyWindow` and the tracker's rolling
  window bookkeeping (accumulate, expire, NaN-free means);
* the ``event-feedback`` engine mode — its no-op-hook guarantee (every
  pre-feedback policy is fingerprint-identical to its ``event`` run, pinned
  pair-by-pair over the harness catalog) and the feedback call order;
* :class:`~repro.baselines.latency_aware.LatencyAwareKeepAlivePolicy`, the
  first consumer — including the PR's acceptance bar: it must beat the fixed
  keep-alive on p99 cold-start latency on a continuous-drift scenario.
"""

import numpy as np
import pytest

from harness import POLICY_PAIRS, random_cluster
from repro.baselines import IndexedFixedKeepAlivePolicy, LatencyAwareKeepAlivePolicy
from repro.scenarios import build_scenario
from repro.simulation import (
    EventConfig,
    EventTracker,
    LatencyWindow,
    Simulator,
    simulate_policy,
)
from repro.simulation.engine import ENGINE_IMPLEMENTATIONS, EVENT_ENGINES
from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace


@pytest.fixture(scope="module")
def split():
    trace = AzureTraceGenerator(GeneratorProfile.small(seed=13)).generate()
    return split_trace(trace, training_days=2.0)


def window(tracker, minute, invoked, counts, cold):
    """Drive one observed minute and return the advanced window."""
    invoked = np.asarray(invoked, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    cold_mask = np.zeros(invoked.size, dtype=bool)
    cold_mask[: len(cold)] = cold
    tracker.observe_minute(minute, invoked, counts, cold_mask, None)
    return tracker.feedback_window(minute)


class TestLatencyWindow:
    def _tracker(self, split, **config):
        return EventTracker(
            split.simulation,
            EventConfig(derive_profiles=False, **config),
            feedback=True,
        )

    def test_all_warm_window_is_zero_and_nan_free(self, split):
        tracker = self._tracker(split)
        tracker.observe_minute(
            0,
            np.array([0, 1], dtype=np.int64),
            np.array([3, 1], dtype=np.int64),
            np.zeros(2, dtype=bool),
            None,
        )
        snapshot = tracker.feedback_window(0)
        assert snapshot.total_events == 0
        assert snapshot.cold_events.sum() == 0
        means = snapshot.mean_wait_ms()
        assert not np.isnan(means).any()
        assert (means == 0.0).all()

    def test_cold_initiation_lands_in_the_window(self, split):
        tracker = self._tracker(split)
        snapshot = window(tracker, 0, [0], [1], [True])
        assert snapshot.cold_events[0] == 1
        assert snapshot.total_wait_ms[0] == pytest.approx(
            EventConfig().default_profile.cold_start_ms
        )
        assert snapshot.mean_wait_ms()[0] == pytest.approx(
            EventConfig().default_profile.cold_start_ms
        )

    def test_window_expires_old_minutes(self, split):
        tracker = self._tracker(split, feedback_window_minutes=5)
        window(tracker, 0, [0], [1], [True])
        # Advance 5 empty minutes: the minute-0 chunk must roll out.
        for minute in range(1, 5):
            assert tracker.feedback_window(minute).cold_events[0] == 1
        snapshot = tracker.feedback_window(5)
        assert snapshot.cold_events[0] == 0
        assert snapshot.total_wait_ms[0] == 0.0

    def test_window_accumulates_across_minutes(self, split):
        tracker = self._tracker(split, feedback_window_minutes=60)
        window(tracker, 0, [0], [1], [True])
        snapshot = window(tracker, 1, [0], [1], [True])
        assert snapshot.cold_events[0] == 2
        assert snapshot.minute == 1
        assert snapshot.window_minutes == 60

    def test_snapshot_is_isolated_from_later_minutes(self, split):
        tracker = self._tracker(split)
        early = window(tracker, 0, [0], [1], [True])
        window(tracker, 1, [0], [1], [True])
        assert early.cold_events[0] == 1  # not mutated retroactively

    def test_plain_event_tracker_refuses_feedback(self, split):
        tracker = EventTracker(split.simulation, EventConfig())
        with pytest.raises(RuntimeError, match="not configured for feedback"):
            tracker.feedback_window(0)

    def test_feedback_window_must_be_positive(self):
        with pytest.raises(ValueError, match="feedback_window_minutes"):
            EventConfig(feedback_window_minutes=0)


class TestFeedbackEngineWiring:
    def test_event_feedback_is_a_registered_engine(self):
        assert "event-feedback" in ENGINE_IMPLEMENTATIONS
        assert set(EVENT_ENGINES) == {"event", "event-feedback"}

    def test_feedback_run_carries_a_latency_block(self, split):
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            split.simulation,
            split.training,
            warmup_minutes=60,
            engine="event-feedback",
        )
        assert result.latency is not None
        assert result.latency.cold_start_events == result.total_cold_starts

    def test_feedback_hook_sees_every_minute(self, split):
        minutes = []

        class Probe(IndexedFixedKeepAlivePolicy):
            def on_feedback(self, minute, latency_window):
                assert isinstance(latency_window, LatencyWindow)
                minutes.append(minute)

        simulate_policy(
            Probe(10), split.simulation, warmup_minutes=0, engine="event-feedback"
        )
        assert minutes == list(range(split.simulation.duration_minutes))

    def test_minute_granular_engines_never_fire_the_hook(self, split):
        fired = []

        class Probe(IndexedFixedKeepAlivePolicy):
            def on_feedback(self, minute, latency_window):
                fired.append(minute)

        for engine in ("vectorized", "event"):
            simulate_policy(
                Probe(10), split.simulation, warmup_minutes=0, engine=engine
            )
        assert fired == []

    def test_event_config_accepted_by_feedback_engine_only(self, split):
        with pytest.raises(ValueError, match="event engine"):
            Simulator(split.simulation, events=EventConfig(), engine="vectorized")
        Simulator(split.simulation, events=EventConfig(), engine="event-feedback")


class TestNoOpHookEquivalence:
    """Every pre-feedback policy: event and event-feedback fingerprints match.

    The harness's cross-engine assertions already sweep the full matrix;
    this class pins the narrower, load-bearing property directly — pair by
    pair, with and without capacity pressure — so a regression names the
    exact policy whose decisions the feedback plumbing perturbed.
    """

    @pytest.mark.parametrize("dict_factory, indexed_factory", POLICY_PAIRS)
    def test_feedback_engine_is_a_no_op_for_classic_policies(
        self, split, dict_factory, indexed_factory
    ):
        fingerprints = {
            engine: simulate_policy(
                indexed_factory(),
                split.simulation,
                split.training,
                warmup_minutes=120,
                engine=engine,
            ).deterministic_fingerprint()
            for engine in ("event", "event-feedback")
        }
        assert fingerprints["event"] == fingerprints["event-feedback"]

    def test_no_op_equivalence_holds_under_capacity_pressure(self, split):
        cluster = random_cluster(3, split)
        fingerprints = {
            engine: simulate_policy(
                IndexedFixedKeepAlivePolicy(10),
                split.simulation,
                split.training,
                warmup_minutes=120,
                engine=engine,
                cluster=cluster,
            ).deterministic_fingerprint()
            for engine in ("event", "event-feedback")
        }
        assert fingerprints["event"] == fingerprints["event-feedback"]


class TestLatencyAwareKeepAlive:
    def _window(self, cold_events, total_wait_ms, minute=0, horizon=60):
        return LatencyWindow(
            minute=minute,
            window_minutes=horizon,
            cold_events=np.asarray(cold_events, dtype=np.int64),
            total_wait_ms=np.asarray(total_wait_ms, dtype=float),
        )

    def _bound(self, split, **kwargs):
        policy = LatencyAwareKeepAlivePolicy(**kwargs)
        policy.prepare(split.simulation.records(), None)
        policy.bind_index(split.simulation.invocation_index())
        return policy

    def test_extends_expensive_and_shrinks_cheap(self, split):
        policy = self._bound(split, base_keep_alive_minutes=10, cost_exponent=1.0)
        n = split.simulation.invocation_index().n_functions
        cold = np.zeros(n, dtype=np.int64)
        wait = np.zeros(n, dtype=float)
        # One event each; the event-weighted pivot is (1000+100+550)/3 = 550,
        # so function 2 sits exactly at the pivot.
        cold[0], wait[0] = 1, 1000.0
        cold[1], wait[1] = 1, 100.0
        cold[2], wait[2] = 1, 550.0
        policy.on_feedback(0, self._window(cold, wait))
        horizons = policy.keep_alive_minutes
        assert horizons[0] > 10  # expensive: extended
        assert horizons[1] < 10  # cheap: shrunk
        assert horizons[2] == 10  # at the pivot: base preserved
        assert horizons[3] == 10  # unobserved: untouched

    def test_horizons_are_clamped(self, split):
        policy = self._bound(
            split,
            base_keep_alive_minutes=10,
            min_keep_alive_minutes=2,
            max_keep_alive_minutes=30,
            cost_exponent=3.0,
        )
        n = split.simulation.invocation_index().n_functions
        cold = np.zeros(n, dtype=np.int64)
        wait = np.zeros(n, dtype=float)
        cold[0], wait[0] = 1, 10_000.0
        cold[1], wait[1] = 100, 100.0
        policy.on_feedback(0, self._window(cold, wait))
        horizons = policy.keep_alive_minutes
        assert horizons[0] == 30 and horizons[1] == 2

    def test_all_warm_window_changes_nothing(self, split):
        policy = self._bound(split)
        n = split.simulation.invocation_index().n_functions
        before = policy.keep_alive_minutes
        policy.on_feedback(0, self._window(np.zeros(n), np.zeros(n)))
        np.testing.assert_array_equal(before, policy.keep_alive_minutes)

    def test_zero_cost_window_keeps_horizons_nan_free(self, split):
        """Cold events with all-zero waits (cold_start_scale=0) carry no
        cost signal: the relative pivot is 0 and the policy must keep its
        horizons rather than divide by it."""
        policy = self._bound(split)
        n = split.simulation.invocation_index().n_functions
        cold = np.zeros(n, dtype=np.int64)
        cold[:3] = 2
        policy.on_feedback(0, self._window(cold, np.zeros(n)))
        assert (policy.keep_alive_minutes == 10).all()

    def test_fixed_reference_pivot_is_honoured(self, split):
        policy = self._bound(
            split, cost_exponent=1.0, reference_cold_start_ms=100.0
        )
        n = split.simulation.invocation_index().n_functions
        cold = np.zeros(n, dtype=np.int64)
        wait = np.zeros(n, dtype=float)
        cold[0], wait[0] = 1, 200.0  # 2x the fixed pivot
        policy.on_feedback(0, self._window(cold, wait))
        assert policy.keep_alive_minutes[0] == 20

    def test_reset_restores_base_horizons(self, split):
        policy = self._bound(split)
        n = split.simulation.invocation_index().n_functions
        cold = np.zeros(n, dtype=np.int64)
        wait = np.zeros(n, dtype=float)
        cold[0], wait[0] = 1, 5000.0
        policy.on_feedback(0, self._window(cold, wait))
        policy.reset()
        assert (policy.keep_alive_minutes == 10).all()

    def test_degrades_to_fixed_keepalive_off_the_feedback_engine(self, split):
        fixed = simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            split.simulation,
            split.training,
            warmup_minutes=120,
        )
        latency_aware = simulate_policy(
            LatencyAwareKeepAlivePolicy(base_keep_alive_minutes=10),
            split.simulation,
            split.training,
            warmup_minutes=120,
        )
        # Same decisions, different policy name: compare the per-function
        # statistics rather than the (name-hashing) fingerprint.
        assert {
            f: (s.invocations, s.cold_starts, s.wasted_memory_time)
            for f, s in fixed.per_function.items()
        } == {
            f: (s.invocations, s.cold_starts, s.wasted_memory_time)
            for f, s in latency_aware.per_function.items()
        }

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            LatencyAwareKeepAlivePolicy(base_keep_alive_minutes=0)
        with pytest.raises(ValueError):
            LatencyAwareKeepAlivePolicy(
                min_keep_alive_minutes=10, max_keep_alive_minutes=5
            )
        with pytest.raises(ValueError):
            LatencyAwareKeepAlivePolicy(cost_exponent=0.0)
        with pytest.raises(ValueError):
            LatencyAwareKeepAlivePolicy(reference_cold_start_ms=-1.0)


class TestClosedLoopOutcomes:
    """The loop, closed end to end on a continuous-drift scenario."""

    SHAPE = dict(seed=7, n_functions=40, days=3.0, training_days=2.0)

    def _run(self, policy, workload, engine):
        return simulate_policy(
            policy,
            workload.split.simulation,
            workload.split.training,
            warmup_minutes=0,
            engine=engine,
            events=workload.events,
        )

    def test_feedback_actually_changes_latency_aware_decisions(self):
        workload = build_scenario("seasonal-mix", **self.SHAPE)
        open_loop = self._run(
            LatencyAwareKeepAlivePolicy(), workload, engine="event"
        )
        closed_loop = self._run(
            LatencyAwareKeepAlivePolicy(), workload, engine="event-feedback"
        )
        assert (
            open_loop.deterministic_fingerprint()
            != closed_loop.deterministic_fingerprint()
        )

    def test_closed_loop_runs_are_deterministic(self):
        workload = build_scenario("seasonal-mix", **self.SHAPE)
        first = self._run(
            LatencyAwareKeepAlivePolicy(), workload, engine="event-feedback"
        )
        second = self._run(
            LatencyAwareKeepAlivePolicy(), workload, engine="event-feedback"
        )
        assert (
            first.deterministic_fingerprint() == second.deterministic_fingerprint()
        )
        np.testing.assert_array_equal(
            first.latency.cold_wait_ms, second.latency.cold_wait_ms
        )

    def test_latency_aware_beats_fixed_on_p99_under_continuous_drift(self):
        """The PR's acceptance criterion, pinned on seasonal-mix.

        Under streaming evaluation (no training window) on the feedback
        engine, the latency-aware policy's pooled p99 cold-start wait must
        be strictly below the fixed keep-alive's at the same base horizon.
        """
        from repro.experiments.rq5_latency import latency_rq
        from repro.experiments.runner import ExperimentConfig

        config = ExperimentConfig(
            n_functions=self.SHAPE["n_functions"],
            seed=self.SHAPE["seed"],
            duration_days=self.SHAPE["days"],
            training_days=self.SHAPE["training_days"],
            warmup_minutes=0,
        )
        report = latency_rq(
            scenarios=("seasonal-mix",),
            policies=("fixed-10min-indexed", "latency-keepalive"),
            seeds=(self.SHAPE["seed"],),
            config=config,
            streaming=True,
        )
        stats = report["seasonal-mix"]
        assert (
            stats["latency-keepalive"].p99_ms
            < stats["fixed-10min-indexed"].p99_ms
        )
        # ... and not by trading the whole distribution away: p95 too.
        assert (
            stats["latency-keepalive"].p95_ms
            < stats["fixed-10min-indexed"].p95_ms
        )
