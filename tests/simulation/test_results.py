"""Tests for simulation result aggregation."""

import numpy as np
import pytest

from repro.simulation.results import (
    FunctionStats,
    LatencyStats,
    SimulationResult,
    compare_results,
)


def make_result(stats, memory=None, wmt=0, emcr=0.0):
    return SimulationResult(
        policy_name="test",
        duration_minutes=10,
        per_function={s.function_id: s for s in stats},
        memory_usage=np.asarray(memory if memory is not None else [], dtype=np.int64),
        total_wasted_memory_time=wmt,
        emcr=emcr,
    )


class TestFunctionStats:
    def test_cold_start_rate(self):
        stats = FunctionStats("f", invocations=4, cold_starts=1)
        assert stats.cold_start_rate == pytest.approx(0.25)

    def test_cold_start_rate_zero_invocations(self):
        assert FunctionStats("f").cold_start_rate == 0.0

    def test_always_and_never_cold(self):
        assert FunctionStats("f", invocations=3, cold_starts=3).always_cold
        assert FunctionStats("f", invocations=3, cold_starts=0).never_cold
        assert not FunctionStats("f", invocations=0, cold_starts=0).always_cold

    def test_wmt_ratio(self):
        assert FunctionStats("f", invocations=2, wasted_memory_time=6).wmt_ratio == 3.0
        assert FunctionStats("f", invocations=0, wasted_memory_time=6).wmt_ratio == 6.0


class TestSimulationResult:
    def test_totals(self):
        result = make_result(
            [
                FunctionStats("a", invocations=10, cold_starts=2),
                FunctionStats("b", invocations=5, cold_starts=5),
            ]
        )
        assert result.total_invocations == 15
        assert result.total_cold_starts == 7
        assert result.overall_cold_start_rate == pytest.approx(7 / 15)

    def test_percentiles_over_invoked_functions_only(self):
        result = make_result(
            [
                FunctionStats("a", invocations=10, cold_starts=0),
                FunctionStats("b", invocations=10, cold_starts=10),
                FunctionStats("idle", invocations=0, cold_starts=0, wasted_memory_time=5),
            ]
        )
        rates = result.cold_start_rates()
        assert sorted(rates) == [0.0, 1.0]
        assert result.cold_start_rate_percentile(50.0) == pytest.approx(0.5)

    def test_q3_property_matches_percentile(self):
        result = make_result(
            [FunctionStats(f"f{i}", invocations=1, cold_starts=i % 2) for i in range(20)]
        )
        assert result.q3_cold_start_rate == result.cold_start_rate_percentile(75.0)

    def test_always_and_never_cold_fractions(self):
        result = make_result(
            [
                FunctionStats("a", invocations=4, cold_starts=4),
                FunctionStats("b", invocations=4, cold_starts=0),
                FunctionStats("c", invocations=4, cold_starts=2),
            ]
        )
        assert result.always_cold_fraction == pytest.approx(1 / 3)
        assert result.never_cold_fraction == pytest.approx(1 / 3)

    def test_memory_aggregates(self):
        result = make_result([], memory=[1, 2, 3])
        assert result.average_memory_usage == pytest.approx(2.0)
        assert result.peak_memory_usage == 3

    def test_empty_result_safe(self):
        result = make_result([])
        assert result.overall_cold_start_rate == 0.0
        assert result.q3_cold_start_rate == 0.0
        assert result.always_cold_fraction == 0.0
        assert result.average_memory_usage == 0.0

    def test_summary_keys(self):
        result = make_result([FunctionStats("a", invocations=1, cold_starts=1)])
        summary = result.summary()
        for key in ("policy", "q3_csr", "wasted_memory_time", "emcr"):
            assert key in summary

    def test_compare_results(self):
        first = make_result([FunctionStats("a", invocations=1, cold_starts=0)])
        comparison = compare_results({"one": first})
        assert comparison["one"]["policy"] == "test"


def make_latency(waits, per_function=None, **counts):
    waits = np.asarray(waits, dtype=float)
    return LatencyStats(
        total_events=counts.get("total_events", waits.size),
        warm_events=counts.get("warm_events", 0),
        cold_start_events=counts.get("cold_start_events", waits.size),
        delayed_events=counts.get("delayed_events", 0),
        cold_wait_ms=waits,
        per_function_wait_ms={
            key: np.asarray(values, dtype=float)
            for key, values in (per_function or {}).items()
        },
    )


class TestLatencyStatsEdgeCases:
    """Zero-cold-event runs and merge with empty operands (PR 5 satellite).

    An all-warm streaming window produces a LatencyStats with an empty wait
    array; every percentile accessor must report 0.0 — never NaN, never an
    exception — and pooling such empties into a merge must neither poison
    the aggregates nor break associativity.
    """

    def test_zero_cold_events_percentiles_are_zero_not_nan(self):
        empty = make_latency([])
        for value in (
            empty.p50_ms,
            empty.p95_ms,
            empty.p99_ms,
            empty.mean_ms,
            empty.max_ms,
            empty.cold_event_fraction,
        ):
            assert value == 0.0
            assert not np.isnan(value)

    def test_zero_cold_events_summary_is_nan_free(self):
        summary = make_latency([]).summary()
        assert summary["lat_p50_ms"] == 0.0
        assert summary["lat_p99_ms"] == 0.0
        assert not any(np.isnan(value) for value in summary.values())

    def test_zero_cold_events_function_tail_is_empty(self):
        assert make_latency([]).function_tail() == {}

    def test_merge_of_nothing_is_the_empty_stats(self):
        merged = LatencyStats.merge([])
        assert merged.total_events == 0
        assert merged.cold_wait_ms.size == 0
        assert merged.p99_ms == 0.0 and not np.isnan(merged.p99_ms)

    def test_merge_with_empty_operand_is_identity(self):
        stats = make_latency([100.0, 300.0], per_function={"f": [100.0, 300.0]})
        merged = LatencyStats.merge([stats, LatencyStats()])
        assert merged.total_events == stats.total_events
        assert merged.cold_start_events == stats.cold_start_events
        np.testing.assert_array_equal(merged.cold_wait_ms, stats.cold_wait_ms)
        np.testing.assert_array_equal(
            merged.per_function_wait_ms["f"], stats.per_function_wait_ms["f"]
        )
        # ... regardless of operand order.
        flipped = LatencyStats.merge([LatencyStats(), stats])
        assert flipped.p99_ms == merged.p99_ms
        assert flipped.total_events == merged.total_events

    def test_merge_stays_associative_with_empty_operands(self):
        a = make_latency([100.0], per_function={"f": [100.0]})
        b = LatencyStats()  # the all-warm seed
        c = make_latency([900.0, 50.0], per_function={"g": [900.0, 50.0]})
        left = LatencyStats.merge([LatencyStats.merge([a, b]), c])
        right = LatencyStats.merge([a, LatencyStats.merge([b, c])])
        flat = LatencyStats.merge([a, b, c])
        for merged in (left, right):
            assert merged.total_events == flat.total_events
            assert merged.cold_start_events == flat.cold_start_events
            assert merged.p50_ms == flat.p50_ms
            assert merged.p99_ms == flat.p99_ms
            assert set(merged.per_function_wait_ms) == set(flat.per_function_wait_ms)
            for key, values in flat.per_function_wait_ms.items():
                np.testing.assert_array_equal(
                    np.sort(merged.per_function_wait_ms[key]), np.sort(values)
                )


def make_cpu_latency(
    slowdowns,
    cpu_waits=(),
    slo_ms=None,
    slo_checked=0,
    slo_violations=0,
    **counts,
):
    slowdowns = np.asarray(slowdowns, dtype=float)
    cpu_waits = np.asarray(cpu_waits, dtype=float)
    return LatencyStats(
        total_events=counts.get("total_events", slowdowns.size),
        warm_events=counts.get("warm_events", slowdowns.size),
        cpu_scheduled_events=counts.get("cpu_scheduled_events", slowdowns.size),
        cpu_delayed_events=counts.get("cpu_delayed_events", cpu_waits.size),
        cpu_wait_ms=cpu_waits,
        slowdown=slowdowns,
        slo_ms=slo_ms,
        slo_checked_events=slo_checked,
        slo_violations=slo_violations,
    )


class TestLatencyStatsCpuMerge:
    """Merge laws for the PR 8 CPU/slowdown/SLO fields.

    Sharded runs pool per-shard LatencyStats in arbitrary grouping and
    order, so the new counters and sample arrays must merge associatively
    and commutatively, stay NaN-free across empty shards, and survive
    operands pickled before the fields existed (simulated by old-style
    stats built without them).
    """

    def _shards(self):
        a = make_cpu_latency(
            [1.0, 2.5, 4.0],
            cpu_waits=[120.0, 900.0],
            slo_ms=500.0,
            slo_checked=3,
            slo_violations=1,
        )
        b = LatencyStats()  # an all-quiet shard
        c = make_cpu_latency(
            [1.0, 1.0],
            cpu_waits=[],
            slo_ms=500.0,
            slo_checked=2,
            slo_violations=0,
        )
        return a, b, c

    def _assert_equivalent(self, first, second):
        assert first.cpu_scheduled_events == second.cpu_scheduled_events
        assert first.cpu_delayed_events == second.cpu_delayed_events
        assert first.slo_ms == second.slo_ms
        assert first.slo_checked_events == second.slo_checked_events
        assert first.slo_violations == second.slo_violations
        np.testing.assert_array_equal(
            np.sort(first.cpu_wait_ms), np.sort(second.cpu_wait_ms)
        )
        np.testing.assert_array_equal(
            np.sort(first.slowdown), np.sort(second.slowdown)
        )

    def test_merge_is_associative(self):
        a, b, c = self._shards()
        left = LatencyStats.merge([LatencyStats.merge([a, b]), c])
        right = LatencyStats.merge([a, LatencyStats.merge([b, c])])
        flat = LatencyStats.merge([a, b, c])
        self._assert_equivalent(left, flat)
        self._assert_equivalent(right, flat)

    def test_merge_is_commutative(self):
        a, b, c = self._shards()
        self._assert_equivalent(
            LatencyStats.merge([a, b, c]), LatencyStats.merge([c, a, b])
        )

    def test_merge_totals(self):
        a, _, c = self._shards()
        merged = LatencyStats.merge(self._shards())
        assert merged.cpu_scheduled_events == 5
        assert merged.cpu_delayed_events == 2
        assert merged.slo_checked_events == 5
        assert merged.slo_violations == 1
        assert merged.slo_ms == 500.0
        assert merged.slowdown.size == a.slowdown.size + c.slowdown.size

    def test_empty_merge_is_nan_free(self):
        merged = LatencyStats.merge([LatencyStats(), LatencyStats()])
        for value in (
            merged.slowdown_p50,
            merged.slowdown_p99,
            merged.slowdown_mean,
            merged.cpu_wait_p99_ms,
            merged.cpu_delayed_fraction,
            merged.slo_violation_rate,
        ):
            assert value == 0.0
            assert not np.isnan(value)
        assert merged.slo_ms is None

    def test_summary_is_nan_free_with_and_without_cpu(self):
        for stats in (LatencyStats(), LatencyStats.merge(self._shards())):
            summary = stats.summary()
            assert not any(np.isnan(value) for value in summary.values())
        merged = LatencyStats.merge(self._shards())
        summary = merged.summary()
        assert summary["slowdown_p99"] >= 1.0
        assert summary["slo_violation_rate"] == pytest.approx(1 / 5)

    def test_merge_tolerates_pre_cpu_operands(self):
        # Stats unpickled from a cache written before the CPU fields existed
        # lack the attributes entirely; merge must treat them as zeros.
        old = make_latency([250.0])
        for name in (
            "cpu_scheduled_events",
            "cpu_delayed_events",
            "cpu_wait_ms",
            "slowdown",
            "slo_ms",
            "slo_checked_events",
            "slo_violations",
        ):
            object.__delattr__(old, name)
        new = make_cpu_latency([2.0], cpu_waits=[40.0], slo_ms=100.0, slo_checked=1)
        merged = LatencyStats.merge([old, new])
        assert merged.cpu_scheduled_events == 1
        assert merged.cpu_delayed_events == 1
        assert merged.slo_ms == 100.0
        np.testing.assert_array_equal(merged.cpu_wait_ms, [40.0])
        # Order must not matter for the guard either.
        flipped = LatencyStats.merge([new, old])
        assert flipped.cpu_scheduled_events == 1
        assert flipped.slo_ms == 100.0
