"""Tests for simulation result aggregation."""

import numpy as np
import pytest

from repro.simulation.results import FunctionStats, SimulationResult, compare_results


def make_result(stats, memory=None, wmt=0, emcr=0.0):
    return SimulationResult(
        policy_name="test",
        duration_minutes=10,
        per_function={s.function_id: s for s in stats},
        memory_usage=np.asarray(memory if memory is not None else [], dtype=np.int64),
        total_wasted_memory_time=wmt,
        emcr=emcr,
    )


class TestFunctionStats:
    def test_cold_start_rate(self):
        stats = FunctionStats("f", invocations=4, cold_starts=1)
        assert stats.cold_start_rate == pytest.approx(0.25)

    def test_cold_start_rate_zero_invocations(self):
        assert FunctionStats("f").cold_start_rate == 0.0

    def test_always_and_never_cold(self):
        assert FunctionStats("f", invocations=3, cold_starts=3).always_cold
        assert FunctionStats("f", invocations=3, cold_starts=0).never_cold
        assert not FunctionStats("f", invocations=0, cold_starts=0).always_cold

    def test_wmt_ratio(self):
        assert FunctionStats("f", invocations=2, wasted_memory_time=6).wmt_ratio == 3.0
        assert FunctionStats("f", invocations=0, wasted_memory_time=6).wmt_ratio == 6.0


class TestSimulationResult:
    def test_totals(self):
        result = make_result(
            [
                FunctionStats("a", invocations=10, cold_starts=2),
                FunctionStats("b", invocations=5, cold_starts=5),
            ]
        )
        assert result.total_invocations == 15
        assert result.total_cold_starts == 7
        assert result.overall_cold_start_rate == pytest.approx(7 / 15)

    def test_percentiles_over_invoked_functions_only(self):
        result = make_result(
            [
                FunctionStats("a", invocations=10, cold_starts=0),
                FunctionStats("b", invocations=10, cold_starts=10),
                FunctionStats("idle", invocations=0, cold_starts=0, wasted_memory_time=5),
            ]
        )
        rates = result.cold_start_rates()
        assert sorted(rates) == [0.0, 1.0]
        assert result.cold_start_rate_percentile(50.0) == pytest.approx(0.5)

    def test_q3_property_matches_percentile(self):
        result = make_result(
            [FunctionStats(f"f{i}", invocations=1, cold_starts=i % 2) for i in range(20)]
        )
        assert result.q3_cold_start_rate == result.cold_start_rate_percentile(75.0)

    def test_always_and_never_cold_fractions(self):
        result = make_result(
            [
                FunctionStats("a", invocations=4, cold_starts=4),
                FunctionStats("b", invocations=4, cold_starts=0),
                FunctionStats("c", invocations=4, cold_starts=2),
            ]
        )
        assert result.always_cold_fraction == pytest.approx(1 / 3)
        assert result.never_cold_fraction == pytest.approx(1 / 3)

    def test_memory_aggregates(self):
        result = make_result([], memory=[1, 2, 3])
        assert result.average_memory_usage == pytest.approx(2.0)
        assert result.peak_memory_usage == 3

    def test_empty_result_safe(self):
        result = make_result([])
        assert result.overall_cold_start_rate == 0.0
        assert result.q3_cold_start_rate == 0.0
        assert result.always_cold_fraction == 0.0
        assert result.average_memory_usage == 0.0

    def test_summary_keys(self):
        result = make_result([FunctionStats("a", invocations=1, cold_starts=1)])
        summary = result.summary()
        for key in ("policy", "q3_csr", "wasted_memory_time", "emcr"):
            assert key in summary

    def test_compare_results(self):
        first = make_result([FunctionStats("a", invocations=1, cold_starts=0)])
        comparison = compare_results({"one": first})
        assert comparison["one"]["policy"] == "test"
