"""Tests for simulation result aggregation."""

import numpy as np
import pytest

from repro.simulation.results import (
    FunctionStats,
    LatencyStats,
    SimulationResult,
    compare_results,
)


def make_result(stats, memory=None, wmt=0, emcr=0.0):
    return SimulationResult(
        policy_name="test",
        duration_minutes=10,
        per_function={s.function_id: s for s in stats},
        memory_usage=np.asarray(memory if memory is not None else [], dtype=np.int64),
        total_wasted_memory_time=wmt,
        emcr=emcr,
    )


class TestFunctionStats:
    def test_cold_start_rate(self):
        stats = FunctionStats("f", invocations=4, cold_starts=1)
        assert stats.cold_start_rate == pytest.approx(0.25)

    def test_cold_start_rate_zero_invocations(self):
        assert FunctionStats("f").cold_start_rate == 0.0

    def test_always_and_never_cold(self):
        assert FunctionStats("f", invocations=3, cold_starts=3).always_cold
        assert FunctionStats("f", invocations=3, cold_starts=0).never_cold
        assert not FunctionStats("f", invocations=0, cold_starts=0).always_cold

    def test_wmt_ratio(self):
        assert FunctionStats("f", invocations=2, wasted_memory_time=6).wmt_ratio == 3.0
        assert FunctionStats("f", invocations=0, wasted_memory_time=6).wmt_ratio == 6.0


class TestSimulationResult:
    def test_totals(self):
        result = make_result(
            [
                FunctionStats("a", invocations=10, cold_starts=2),
                FunctionStats("b", invocations=5, cold_starts=5),
            ]
        )
        assert result.total_invocations == 15
        assert result.total_cold_starts == 7
        assert result.overall_cold_start_rate == pytest.approx(7 / 15)

    def test_percentiles_over_invoked_functions_only(self):
        result = make_result(
            [
                FunctionStats("a", invocations=10, cold_starts=0),
                FunctionStats("b", invocations=10, cold_starts=10),
                FunctionStats("idle", invocations=0, cold_starts=0, wasted_memory_time=5),
            ]
        )
        rates = result.cold_start_rates()
        assert sorted(rates) == [0.0, 1.0]
        assert result.cold_start_rate_percentile(50.0) == pytest.approx(0.5)

    def test_q3_property_matches_percentile(self):
        result = make_result(
            [FunctionStats(f"f{i}", invocations=1, cold_starts=i % 2) for i in range(20)]
        )
        assert result.q3_cold_start_rate == result.cold_start_rate_percentile(75.0)

    def test_always_and_never_cold_fractions(self):
        result = make_result(
            [
                FunctionStats("a", invocations=4, cold_starts=4),
                FunctionStats("b", invocations=4, cold_starts=0),
                FunctionStats("c", invocations=4, cold_starts=2),
            ]
        )
        assert result.always_cold_fraction == pytest.approx(1 / 3)
        assert result.never_cold_fraction == pytest.approx(1 / 3)

    def test_memory_aggregates(self):
        result = make_result([], memory=[1, 2, 3])
        assert result.average_memory_usage == pytest.approx(2.0)
        assert result.peak_memory_usage == 3

    def test_empty_result_safe(self):
        result = make_result([])
        assert result.overall_cold_start_rate == 0.0
        assert result.q3_cold_start_rate == 0.0
        assert result.always_cold_fraction == 0.0
        assert result.average_memory_usage == 0.0

    def test_summary_keys(self):
        result = make_result([FunctionStats("a", invocations=1, cold_starts=1)])
        summary = result.summary()
        for key in ("policy", "q3_csr", "wasted_memory_time", "emcr"):
            assert key in summary

    def test_compare_results(self):
        first = make_result([FunctionStats("a", invocations=1, cold_starts=0)])
        comparison = compare_results({"one": first})
        assert comparison["one"]["policy"] == "test"


def make_latency(waits, per_function=None, **counts):
    waits = np.asarray(waits, dtype=float)
    return LatencyStats(
        total_events=counts.get("total_events", waits.size),
        warm_events=counts.get("warm_events", 0),
        cold_start_events=counts.get("cold_start_events", waits.size),
        delayed_events=counts.get("delayed_events", 0),
        cold_wait_ms=waits,
        per_function_wait_ms={
            key: np.asarray(values, dtype=float)
            for key, values in (per_function or {}).items()
        },
    )


class TestLatencyStatsEdgeCases:
    """Zero-cold-event runs and merge with empty operands (PR 5 satellite).

    An all-warm streaming window produces a LatencyStats with an empty wait
    array; every percentile accessor must report 0.0 — never NaN, never an
    exception — and pooling such empties into a merge must neither poison
    the aggregates nor break associativity.
    """

    def test_zero_cold_events_percentiles_are_zero_not_nan(self):
        empty = make_latency([])
        for value in (
            empty.p50_ms,
            empty.p95_ms,
            empty.p99_ms,
            empty.mean_ms,
            empty.max_ms,
            empty.cold_event_fraction,
        ):
            assert value == 0.0
            assert not np.isnan(value)

    def test_zero_cold_events_summary_is_nan_free(self):
        summary = make_latency([]).summary()
        assert summary["lat_p50_ms"] == 0.0
        assert summary["lat_p99_ms"] == 0.0
        assert not any(np.isnan(value) for value in summary.values())

    def test_zero_cold_events_function_tail_is_empty(self):
        assert make_latency([]).function_tail() == {}

    def test_merge_of_nothing_is_the_empty_stats(self):
        merged = LatencyStats.merge([])
        assert merged.total_events == 0
        assert merged.cold_wait_ms.size == 0
        assert merged.p99_ms == 0.0 and not np.isnan(merged.p99_ms)

    def test_merge_with_empty_operand_is_identity(self):
        stats = make_latency([100.0, 300.0], per_function={"f": [100.0, 300.0]})
        merged = LatencyStats.merge([stats, LatencyStats()])
        assert merged.total_events == stats.total_events
        assert merged.cold_start_events == stats.cold_start_events
        np.testing.assert_array_equal(merged.cold_wait_ms, stats.cold_wait_ms)
        np.testing.assert_array_equal(
            merged.per_function_wait_ms["f"], stats.per_function_wait_ms["f"]
        )
        # ... regardless of operand order.
        flipped = LatencyStats.merge([LatencyStats(), stats])
        assert flipped.p99_ms == merged.p99_ms
        assert flipped.total_events == merged.total_events

    def test_merge_stays_associative_with_empty_operands(self):
        a = make_latency([100.0], per_function={"f": [100.0]})
        b = LatencyStats()  # the all-warm seed
        c = make_latency([900.0, 50.0], per_function={"g": [900.0, 50.0]})
        left = LatencyStats.merge([LatencyStats.merge([a, b]), c])
        right = LatencyStats.merge([a, LatencyStats.merge([b, c])])
        flat = LatencyStats.merge([a, b, c])
        for merged in (left, right):
            assert merged.total_events == flat.total_events
            assert merged.cold_start_events == flat.cold_start_events
            assert merged.p50_ms == flat.p50_ms
            assert merged.p99_ms == flat.p99_ms
            assert set(merged.per_function_wait_ms) == set(flat.per_function_wait_ms)
            for key, values in flat.per_function_wait_ms.items():
                np.testing.assert_array_equal(
                    np.sort(merged.per_function_wait_ms[key]), np.sort(values)
                )
