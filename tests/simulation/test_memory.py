"""Tests for the memory accountant."""

import numpy as np
import pytest

from repro.simulation import MemoryAccountant


class TestMemoryAccountant:
    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            MemoryAccountant(0)

    def test_usage_and_idle_series(self):
        accountant = MemoryAccountant(3)
        accountant.observe_minute(0, {"a", "b"}, {"a": 1})
        accountant.observe_minute(1, {"a"}, {})
        accountant.observe_minute(2, set(), {})
        np.testing.assert_array_equal(accountant.usage_series, [2, 1, 0])
        np.testing.assert_array_equal(accountant.idle_series, [1, 1, 0])

    def test_wasted_memory_time_total_and_per_function(self):
        accountant = MemoryAccountant(3)
        accountant.observe_minute(0, {"a", "b"}, {"a": 1})
        accountant.observe_minute(1, {"a", "b"}, {"b": 2})
        accountant.observe_minute(2, {"b"}, {})
        assert accountant.wasted_memory_time == 3
        assert accountant.wmt_per_function == {"a": 1, "b": 2}

    def test_emcr(self):
        accountant = MemoryAccountant(2)
        accountant.observe_minute(0, {"a", "b"}, {"a": 1})
        accountant.observe_minute(1, {"a", "b"}, {"a": 1, "b": 1})
        # 3 active instance-minutes out of 4 loaded instance-minutes.
        assert accountant.effective_memory_consumption_ratio == pytest.approx(0.75)

    def test_emcr_zero_when_nothing_loaded(self):
        accountant = MemoryAccountant(2)
        accountant.observe_minute(0, set(), {})
        assert accountant.effective_memory_consumption_ratio == 0.0

    def test_average_and_peak_memory(self):
        accountant = MemoryAccountant(2)
        accountant.observe_minute(0, {"a"}, {"a": 1})
        accountant.observe_minute(1, {"a", "b", "c"}, {})
        assert accountant.average_memory_usage == pytest.approx(2.0)
        assert accountant.peak_memory_usage == 3

    def test_out_of_range_minute_rejected(self):
        accountant = MemoryAccountant(1)
        with pytest.raises(IndexError):
            accountant.observe_minute(5, set(), {})

    def test_invoked_but_unlisted_function_not_charged(self):
        accountant = MemoryAccountant(1)
        # A function invoked but not in the loaded set contributes nothing.
        accountant.observe_minute(0, {"a"}, {"a": 1, "ghost": 1})
        assert accountant.wasted_memory_time == 0
        assert accountant.usage_series[0] == 1
