"""Tests for the overhead timer."""

import time

from repro.simulation import OverheadTimer


class TestOverheadTimer:
    def test_initial_state(self):
        timer = OverheadTimer()
        assert timer.total_seconds == 0.0
        assert timer.call_count == 0
        assert timer.mean_seconds == 0.0
        assert timer.max_seconds == 0.0

    def test_measure_accumulates(self):
        timer = OverheadTimer()
        for _ in range(3):
            with timer.measure():
                time.sleep(0.001)
        assert timer.call_count == 3
        assert timer.total_seconds >= 0.003
        assert timer.mean_seconds >= 0.001
        assert timer.max_seconds <= timer.total_seconds

    def test_measure_records_even_on_exception(self):
        timer = OverheadTimer()
        try:
            with timer.measure():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.call_count == 1

    def test_reset(self):
        timer = OverheadTimer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.call_count == 0
        assert timer.total_seconds == 0.0
