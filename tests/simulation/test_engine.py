"""Tests for the simulation engine, including warm-up and degenerate policies."""

import numpy as np
import pytest

from repro.simulation import (
    AlwaysWarmPolicy,
    NoKeepAlivePolicy,
    Simulator,
    simulate_policy,
)
from repro.simulation.policy_base import ProvisioningPolicy
from repro.traces import FunctionRecord, Trace
from repro.traces.schema import TraceMetadata


def single_function_trace(counts, name="t"):
    records = [FunctionRecord("f", "a", "o")]
    return Trace(records, {"f": np.asarray(counts)}, TraceMetadata(name=name, duration_minutes=len(counts)))


class TestDegeneratePolicies:
    def test_no_keepalive_every_invocation_cold(self):
        trace = single_function_trace([1, 0, 1, 0, 1])
        result = simulate_policy(NoKeepAlivePolicy(), trace, warmup_minutes=0)
        stats = result.per_function["f"]
        assert stats.invocations == 3
        assert stats.cold_starts == 3
        assert result.total_wasted_memory_time == 0

    def test_always_warm_only_first_invocation_cold(self):
        trace = single_function_trace([1, 0, 1, 0, 1])
        result = simulate_policy(AlwaysWarmPolicy(), trace, warmup_minutes=0)
        stats = result.per_function["f"]
        assert stats.cold_starts == 1
        # Loaded every minute after the first, idle on minutes 1 and 3.
        assert stats.wasted_memory_time == 2

    def test_always_warm_memory_usage_counts_all_functions(self):
        records = [FunctionRecord(f"f{i}", "a", "o") for i in range(3)]
        counts = {"f0": [1, 0, 0], "f1": [0, 0, 0], "f2": [0, 1, 0]}
        trace = Trace(records, counts, TraceMetadata(name="t", duration_minutes=3))
        result = simulate_policy(AlwaysWarmPolicy(), trace, warmup_minutes=0)
        assert result.peak_memory_usage == 3


class TestAccountingRules:
    def test_cold_start_charged_against_entering_resident_set(self):
        # Function invoked at minutes 0 and 2; a 1-minute keep-alive policy
        # evicts it before minute 2, so both invocations are cold.
        class OneMinutePolicy(ProvisioningPolicy):
            name = "one-minute"

            def on_minute(self, minute, invocations):
                return set(invocations)

        trace = single_function_trace([1, 0, 1])
        result = simulate_policy(OneMinutePolicy(), trace, warmup_minutes=0)
        assert result.per_function["f"].cold_starts == 2

    def test_warm_start_when_policy_keeps_resident(self):
        class KeepForeverPolicy(ProvisioningPolicy):
            name = "keep-forever"

            def __init__(self):
                self._seen = set()

            def on_minute(self, minute, invocations):
                self._seen |= set(invocations)
                return set(self._seen)

        trace = single_function_trace([1, 0, 1])
        result = simulate_policy(KeepForeverPolicy(), trace, warmup_minutes=0)
        assert result.per_function["f"].cold_starts == 1

    def test_wmt_charged_for_resident_idle_minutes(self):
        class KeepForeverPolicy(ProvisioningPolicy):
            name = "keep-forever"

            def __init__(self):
                self._seen = set()

            def on_minute(self, minute, invocations):
                self._seen |= set(invocations)
                return set(self._seen)

        trace = single_function_trace([1, 0, 0, 0, 1])
        result = simulate_policy(KeepForeverPolicy(), trace, warmup_minutes=0)
        assert result.per_function["f"].wasted_memory_time == 3

    def test_memory_usage_includes_on_demand_loads(self):
        trace = single_function_trace([0, 1, 0])
        result = simulate_policy(NoKeepAlivePolicy(), trace, warmup_minutes=0)
        np.testing.assert_array_equal(result.memory_usage, [0, 1, 0])

    def test_overhead_is_measured(self):
        trace = single_function_trace([1, 1, 1])
        result = simulate_policy(NoKeepAlivePolicy(), trace, warmup_minutes=0)
        assert result.overhead_seconds >= 0.0
        assert result.overhead_per_minute >= 0.0


class TestWarmup:
    def test_warmup_carries_residency_across_boundary(self):
        # Training ends with an invocation at its last minute; a 10-minute
        # keep-alive policy should still hold the instance when the
        # simulation window starts, so the first invocation is warm.
        from repro.baselines import FixedKeepAlivePolicy

        training = single_function_trace([0] * 5 + [1], name="train")
        simulation = single_function_trace([0, 0, 1], name="sim")
        result = simulate_policy(
            FixedKeepAlivePolicy(10), simulation, training, warmup_minutes=6
        )
        assert result.per_function["f"].cold_starts == 0

    def test_zero_warmup_starts_cold(self):
        from repro.baselines import FixedKeepAlivePolicy

        training = single_function_trace([0] * 5 + [1], name="train")
        simulation = single_function_trace([0, 0, 1], name="sim")
        result = simulate_policy(
            FixedKeepAlivePolicy(10), simulation, training, warmup_minutes=0
        )
        assert result.per_function["f"].cold_starts == 1

    def test_warmup_minutes_validation(self):
        trace = single_function_trace([1])
        with pytest.raises(ValueError):
            Simulator(trace, warmup_minutes=-1)

    def test_warmup_does_not_charge_metrics(self):
        from repro.baselines import FixedKeepAlivePolicy

        training = single_function_trace([1] * 10, name="train")
        simulation = single_function_trace([0, 0, 0], name="sim")
        result = simulate_policy(
            FixedKeepAlivePolicy(2), simulation, training, warmup_minutes=10
        )
        # The function was never invoked during the simulation window.
        assert result.total_invocations == 0


class TestEngineEquivalence:
    """The vectorized engine must reproduce the reference engine exactly."""

    @staticmethod
    def assert_identical(policy_factory, simulation, training=None, warmup=0, resident=None):
        results = {}
        for engine in ("reference", "vectorized"):
            simulator = Simulator(
                simulation,
                training,
                initially_resident=resident,
                warmup_minutes=warmup,
                engine=engine,
            )
            results[engine] = simulator.run(policy_factory())
        reference, vectorized = results["reference"], results["vectorized"]
        assert set(reference.per_function) == set(vectorized.per_function)
        for function_id, expected in reference.per_function.items():
            actual = vectorized.per_function[function_id]
            assert actual.invocations == expected.invocations, function_id
            assert actual.cold_starts == expected.cold_starts, function_id
            assert actual.wasted_memory_time == expected.wasted_memory_time, function_id
        np.testing.assert_array_equal(reference.memory_usage, vectorized.memory_usage)
        assert reference.total_wasted_memory_time == vectorized.total_wasted_memory_time
        assert reference.emcr == vectorized.emcr
        assert (
            reference.deterministic_fingerprint()
            == vectorized.deterministic_fingerprint()
        )

    def test_single_function_degenerate_policies(self):
        trace = single_function_trace([1, 0, 1, 0, 1])
        self.assert_identical(NoKeepAlivePolicy, trace)
        self.assert_identical(AlwaysWarmPolicy, trace)

    def test_small_fixed_trace_with_keepalive(self):
        from repro.baselines import FixedKeepAlivePolicy

        records = [FunctionRecord(f"f{i}", "a", "o") for i in range(4)]
        counts = {
            "f0": [1, 0, 0, 1, 0, 0, 0, 1],
            "f1": [0, 2, 0, 0, 0, 0, 0, 0],
            "f2": [0, 0, 0, 0, 0, 0, 0, 0],
            "f3": [1, 1, 1, 1, 1, 1, 1, 1],
        }
        trace = Trace(records, counts, TraceMetadata(name="t", duration_minutes=8))
        self.assert_identical(lambda: FixedKeepAlivePolicy(2), trace)

    def test_with_warmup_and_training(self):
        from repro.baselines import FixedKeepAlivePolicy

        training = single_function_trace([0, 1, 0, 1, 1], name="train")
        simulation = single_function_trace([1, 0, 1], name="sim")
        self.assert_identical(
            lambda: FixedKeepAlivePolicy(3), simulation, training, warmup=4
        )

    def test_initially_resident_unknown_to_trace(self):
        # Ids never appearing in the trace must still be charged (usage, idle
        # minutes, wasted memory time) identically by both implementations.
        trace = single_function_trace([1, 0, 1])
        self.assert_identical(NoKeepAlivePolicy, trace, resident={"ghost", "f"})

    def test_synthetic_workload_suite(self):
        from repro.baselines import FixedKeepAlivePolicy, HybridFunctionPolicy
        from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace

        profile = GeneratorProfile(n_functions=25, duration_days=2.0, seed=11,
                                   unseen_window_days=0.5)
        split = split_trace(AzureTraceGenerator(profile).generate(), training_days=1.5)
        for factory in (NoKeepAlivePolicy, AlwaysWarmPolicy,
                        lambda: FixedKeepAlivePolicy(10), HybridFunctionPolicy):
            self.assert_identical(factory, split.simulation, split.training, warmup=120)

    def test_synthetic_workload_paper_policies(self):
        # The policies behind every headline number of the paper must also
        # round-trip through the vectorized fast paths (shared read-only
        # invocation mappings, set-diff residency updates) unchanged.
        from repro.baselines import DefusePolicy, FaasCachePolicy
        from repro.core import SpesPolicy
        from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace

        profile = GeneratorProfile(n_functions=20, duration_days=2.0, seed=23,
                                   unseen_window_days=0.5)
        split = split_trace(AzureTraceGenerator(profile).generate(), training_days=1.5)
        for factory in (SpesPolicy, DefusePolicy, lambda: FaasCachePolicy(capacity=5)):
            self.assert_identical(factory, split.simulation, split.training, warmup=120)

    def test_unknown_engine_rejected(self):
        trace = single_function_trace([1])
        with pytest.raises(ValueError):
            Simulator(trace, engine="warp-drive")


class TestSimulatorReuse:
    def test_prepare_false_skips_offline_phase(self):
        calls = []

        class RecordingPolicy(NoKeepAlivePolicy):
            def prepare(self, functions, training=None):
                calls.append("prepare")
                super().prepare(functions, training)

        trace = single_function_trace([1, 0])
        simulator = Simulator(trace, warmup_minutes=0)
        policy = RecordingPolicy()
        policy.prepare(trace.records(), None)
        simulator.run(policy, prepare=False)
        assert calls == ["prepare"]
