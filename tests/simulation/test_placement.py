"""Tests for the pluggable placement subsystem and per-node arbiters."""

import dataclasses
import zlib

import numpy as np
import pytest

from repro.baselines import IndexedFixedKeepAlivePolicy
from repro.scenarios import build_scenario
from repro.simulation import (
    ClusterModel,
    PLACEMENT_REGISTRY,
    PlacementStrategy,
    get_placement,
    placement_names,
    register_placement,
    simulate_policy,
)
from repro.simulation.placement import UNPLACED
from repro.traces import FunctionRecord, Trace
from repro.traces.schema import TraceMetadata


def ids_on_node(node: int, count: int, n_nodes: int, prefix: str = "f") -> list[str]:
    """Function ids whose CRC-32 hash maps them to ``node``."""
    ids = []
    i = 0
    while len(ids) < count:
        candidate = f"{prefix}{i}"
        if zlib.crc32(candidate.encode()) % n_nodes == node:
            ids.append(candidate)
        i += 1
    return ids


def small_trace(series_by_id, name="t"):
    records = [FunctionRecord(fid, f"app-{fid}", f"owner-{fid}") for fid in series_by_id]
    duration = len(next(iter(series_by_id.values())))
    return Trace(
        records,
        {fid: np.asarray(series) for fid, series in series_by_id.items()},
        TraceMetadata(name=name, duration_minutes=duration),
    )


class TestRegistry:
    def test_builtin_catalog(self):
        assert {"hash", "least-loaded", "correlation-aware"} <= set(placement_names())

    def test_unknown_strategy_raises_with_the_catalog(self):
        with pytest.raises(KeyError, match="unknown placement"):
            get_placement("quantum-annealing")

    def test_model_validates_the_strategy_name(self):
        with pytest.raises(KeyError, match="unknown placement"):
            ClusterModel(memory_capacity=4, placement="quantum-annealing")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_placement(PLACEMENT_REGISTRY["hash"])

    def test_custom_strategy_registration(self):
        class PinToZero(PlacementStrategy):
            name = "test-pin-to-zero"

            def bind(self, model, function_ids, trace=None):
                return np.zeros(len(function_ids), dtype=np.int64)

        register_placement(PinToZero)
        try:
            model = ClusterModel(memory_capacity=4, n_nodes=2, placement="test-pin-to-zero")
            arbiter = model.arbiter(("a", "b", "c"))
            assert arbiter.node_of.tolist() == [0, 0, 0]
        finally:
            del PLACEMENT_REGISTRY["test-pin-to-zero"]


class TestStrategies:
    def test_hash_matches_the_model_hash(self):
        model = ClusterModel(memory_capacity=16, n_nodes=4)
        ids = tuple(f"func-{i:05d}" for i in range(40))
        arbiter = model.arbiter(ids)
        assert arbiter.node_of.tolist() == [model.node_of(fid) for fid in ids]

    def test_least_loaded_places_lazily_and_spreads(self):
        model = ClusterModel(memory_capacity=8, n_nodes=4, placement="least-loaded")
        arbiter = model.arbiter(("a", "b", "c", "d", "e"))
        assert (arbiter.node_of == UNPLACED).all()
        # Five functions become active at once: the greedy spread puts at
        # most ceil(5/4) on any node.
        arbiter.ensure_placed(np.arange(5))
        assert (arbiter.node_of >= 0).all()
        usage = np.bincount(arbiter.node_of, minlength=4)
        assert usage.max() <= 2 and usage.min() >= 1

    def test_least_loaded_prefers_the_freest_node(self):
        model = ClusterModel(memory_capacity=8, n_nodes=2, placement="least-loaded")
        arbiter = model.arbiter(("a", "b", "c"))
        # a and b land on different nodes; with both resident, c must join
        # whichever node argmin picks when usage ties — then the next
        # placement after an imbalance goes to the lighter node.
        arbiter.ensure_placed(np.array([0]))
        assert arbiter.node_of[0] == 0  # empty cluster: lowest node id wins
        arbiter.admit(np.array([True, False, False]))
        arbiter.ensure_placed(np.array([1]))
        assert arbiter.node_of[1] == 1  # node 0 holds a; node 1 is freer

    def test_correlation_aware_colocates_cofiring_app_members(self):
        # Two functions of one app firing in lockstep, plus independent noise.
        duration = 120
        lockstep = np.zeros(duration, dtype=np.int64)
        lockstep[::5] = 1
        other = np.zeros(duration, dtype=np.int64)
        other[3::17] = 1
        records = [
            FunctionRecord("pair-a", "app-0", "owner-0"),
            FunctionRecord("pair-b", "app-0", "owner-0"),
            FunctionRecord("solo-c", "app-1", "owner-1"),
        ]
        trace = Trace(
            records,
            {"pair-a": lockstep, "pair-b": lockstep.copy(), "solo-c": other},
            TraceMetadata(name="cor", duration_minutes=duration),
        )
        model = ClusterModel(memory_capacity=8, n_nodes=2, placement="correlation-aware")
        arbiter = model.arbiter(tuple(trace.function_ids), trace=trace)
        nodes = arbiter.node_of
        assert nodes[0] == nodes[1] != UNPLACED  # the pair is co-located
        assert nodes[2] == UNPLACED  # uncorrelated functions place lazily

    def test_correlation_aware_without_a_trace_falls_back_to_lazy(self):
        model = ClusterModel(memory_capacity=8, n_nodes=2, placement="correlation-aware")
        arbiter = model.arbiter(("a", "b"))
        assert (arbiter.node_of == UNPLACED).all()

    def test_training_less_runs_leak_no_trace_into_placement(self, monkeypatch):
        """Zero-training runs (streaming mode) mine nothing for placement.

        The engine used to fall back to the *simulation* trace when no
        training window existed — future information no online system could
        have.  A training-less run must hand the arbiter no trace at all,
        so trace-hungry strategies take their lazy fallback.
        """
        seen = []
        original = ClusterModel.arbiter

        def spy(self, function_ids, trace=None, footprints_kb=None):
            seen.append(trace)
            return original(self, function_ids, trace=trace, footprints_kb=footprints_kb)

        monkeypatch.setattr(ClusterModel, "arbiter", spy)
        workload = build_scenario(
            "hot-shard", seed=9, n_functions=16, days=1.0, training_days=0.5
        )
        simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            workload.split.simulation,
            None,
            warmup_minutes=0,
            cluster=workload.cluster,
        )
        assert seen == [None]
        seen.clear()
        simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            workload.split.simulation,
            workload.split.training,
            warmup_minutes=0,
            cluster=workload.cluster,
        )
        assert seen == [workload.split.training]


class TestModelValidation:
    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError, match="memory_capacity"):
            ClusterModel(memory_capacity=0)

    def test_migration_knobs_are_validated(self):
        with pytest.raises(ValueError, match="pressure_threshold"):
            ClusterModel(memory_capacity=4, pressure_threshold=0.0)
        with pytest.raises(ValueError, match="pressure_minutes"):
            ClusterModel(memory_capacity=4, pressure_threshold=0.5, pressure_minutes=0)

    def test_migration_enabled_flag(self):
        assert not ClusterModel(memory_capacity=4).migration_enabled
        assert ClusterModel(memory_capacity=4, pressure_threshold=0.5).migration_enabled


class TestArbiterEdgeCases:
    def test_capacity_smaller_than_one_minutes_invoked_set(self):
        # Five functions fire every minute; the cluster holds two.  On-demand
        # loads must still serve every request (usage exceeds the cap
        # transiently) while the admitted set respects the cap.
        series = {f"f{i}": [1] * 10 for i in range(5)}
        trace = small_trace(series)
        model = ClusterModel(memory_capacity=2, n_nodes=1)
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), trace, warmup_minutes=0, cluster=model
        )
        assert result.peak_memory_usage == 5  # on-demand loads are uncapped
        assert result.cluster.peak_node_usage == 5
        # Only 2 of 5 survive each boundary, so 3 declared-resident functions
        # cold-start every minute after the first.
        assert result.cluster.capacity_cold_starts == 3 * 9
        assert result.total_cold_starts == 5 + 3 * 9

    @pytest.mark.parametrize("placement", ("hash", "least-loaded", "correlation-aware"))
    def test_more_nodes_than_functions(self, placement):
        series = {"a": [1, 0, 1, 0, 1], "b": [0, 1, 0, 1, 0]}
        trace = small_trace(series)
        model = ClusterModel(memory_capacity=8, n_nodes=8, placement=placement)
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), trace, warmup_minutes=0, cluster=model
        )
        assert result.cluster.node_usage.shape == (5, 8)
        assert result.cluster.evictions == 0
        assert result.total_cold_starts == 2  # first touch of each function

    def test_per_node_eviction_counts_sum_to_the_total(self):
        workload = build_scenario(
            "capacity-squeeze", seed=7, n_functions=40, days=2.0, training_days=1.0
        )
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(30),
            workload.split.simulation,
            workload.split.training,
            warmup_minutes=60,
            cluster=workload.cluster,
        )
        stats = result.cluster
        assert stats.node_evictions is not None
        assert stats.node_evictions.shape == (stats.n_nodes,)
        assert int(stats.node_evictions.sum()) == stats.evictions

    def test_load_imbalance_of_single_node_cluster_is_zero(self):
        series = {"a": [1] * 5, "b": [1] * 5}
        trace = small_trace(series)
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), trace, warmup_minutes=0,
            cluster=ClusterModel(memory_capacity=4, n_nodes=1),
        )
        assert result.cluster.load_imbalance == 0.0


class TestMigration:
    def model(self, pressure_minutes: int) -> ClusterModel:
        # node_capacity = 2, threshold units = 0.5 * 2 = 1: a node holding
        # both its admitted slots is pressured.
        return ClusterModel(
            memory_capacity=4,
            n_nodes=2,
            pressure_threshold=0.5,
            pressure_minutes=pressure_minutes,
        )

    def arbiter(self, pressure_minutes: int):
        # Three functions hashed to node 0 and none to node 1, so keeping two
        # admitted pressures node 0 while node 1 stays free.
        ids = tuple(ids_on_node(0, 3, 2))
        return self.model(pressure_minutes).arbiter(ids)

    def run_pressured_passes(self, arbiter, passes: int) -> None:
        proposed = np.array([True, True, False])
        for minute in range(passes):
            arbiter.observe_invocations(minute, np.array([0, 1]))
            arbiter.admit(proposed)

    def test_k_minus_one_pressured_minutes_do_not_migrate(self):
        arbiter = self.arbiter(pressure_minutes=3)
        self.run_pressured_passes(arbiter, 2)
        assert arbiter.migrations == 0

    def test_kth_pressured_minute_migrates(self):
        arbiter = self.arbiter(pressure_minutes=3)
        self.run_pressured_passes(arbiter, 3)
        assert arbiter.migrations == 1
        # The victim is the least-recently . . . both invoked each minute, so
        # the tie-break drops the higher index to the free node.
        assert arbiter.node_of[1] == 1
        assert arbiter.migrated_last[1]

    def test_streak_resets_when_pressure_lifts(self):
        arbiter = self.arbiter(pressure_minutes=3)
        self.run_pressured_passes(arbiter, 2)
        arbiter.observe_invocations(2, np.array([0]))
        arbiter.admit(np.array([True, False, False]))  # under threshold
        self.run_pressured_passes(arbiter, 2)
        assert arbiter.migrations == 0  # the streak restarted from zero

    def test_no_migration_when_every_node_is_full(self):
        # One node, always pressured, but nowhere to go.
        model = ClusterModel(
            memory_capacity=2, n_nodes=1, pressure_threshold=0.5, pressure_minutes=1
        )
        arbiter = model.arbiter(("a", "b"))
        for minute in range(5):
            arbiter.observe_invocations(minute, np.array([0, 1]))
            arbiter.admit(np.array([True, True]))
        assert arbiter.migrations == 0

    def test_pressured_nodes_never_ping_pong_instances(self):
        # Both nodes above the threshold with one free unit each: migrating
        # between two hot nodes would bounce instances forever without
        # relieving anything, so no migration may fire.
        model = ClusterModel(
            memory_capacity=6, n_nodes=2, pressure_threshold=0.5, pressure_minutes=1
        )
        ids = tuple(ids_on_node(0, 2, 2) + ids_on_node(1, 2, 2))
        arbiter = model.arbiter(ids)
        proposed = np.ones(4, dtype=bool)  # 2 admitted per node > 0.5 * 3
        for minute in range(5):
            arbiter.observe_invocations(minute, np.arange(4))
            arbiter.admit(proposed)
        assert arbiter.migrations == 0

    def test_simultaneous_migrations_reserve_the_target_slot(self):
        # Regression: two nodes pressured in the same pass, with one node
        # holding a single free slot.  Before `_maybe_migrate` reserved the
        # inbound unit on the target, every source in the pass recomputed
        # `free` from the stale usage and dogpiled its migrant onto the same
        # nearly-full node, over-committing it and setting up mutual
        # evictions next minute.
        model = ClusterModel(
            memory_capacity=6, n_nodes=3, pressure_threshold=0.5, pressure_minutes=1
        )
        # node_capacity = 2, threshold units = 1.  Node 0 holds one admitted
        # instance (one free slot, not pressured); nodes 1 and 2 hold two
        # each (both pressured).  The target with a free slot deliberately
        # has the lowest node id so the buggy argmax tie-break would pick it
        # for both migrants.
        ids = tuple(
            ids_on_node(0, 1, 3) + ids_on_node(1, 2, 3) + ids_on_node(2, 2, 3)
        )
        arbiter = model.arbiter(ids)
        arbiter.observe_invocations(0, np.arange(5))
        arbiter.admit(np.ones(5, dtype=bool))
        assert arbiter.migrations == 2
        counts = np.bincount(arbiter.node_of, minlength=3)
        # Node 0 absorbed exactly one migrant — filled to capacity, not past
        # it; the second migrant went to the slot node 1 itself freed.
        assert counts[0] == model.node_capacity
        assert (counts <= model.node_capacity).all()

    def test_migration_forces_a_cold_start_and_is_attributed(self):
        workload = build_scenario(
            "capacity-squeeze", seed=5, n_functions=40, days=2.0, training_days=1.0
        )
        cluster = dataclasses.replace(
            workload.cluster, pressure_threshold=0.6, pressure_minutes=2
        )
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            workload.split.simulation,
            workload.split.training,
            warmup_minutes=60,
            engine="event",
            cluster=cluster,
        )
        stats = result.cluster
        assert stats.migrations > 0
        assert 0 < stats.migration_cold_starts <= stats.capacity_cold_starts
        assert result.latency.migration_cold_events == stats.migration_cold_starts
        assert result.summary()["migrations"] == float(stats.migrations)


class TestHotShardScenario:
    SHAPE = dict(seed=9, n_functions=16, days=1.0, training_days=0.5)

    def test_hot_functions_all_hash_to_node_zero(self):
        workload = build_scenario("hot-shard", **self.SHAPE)
        model = workload.cluster
        hot = [fid for fid in workload.split.simulation.function_ids if fid.startswith("hot")]
        assert hot and all(model.node_of(fid) == 0 for fid in hot)
        # The background population spreads over the other nodes.
        rest = [fid for fid in workload.split.simulation.function_ids if not fid.startswith("hot")]
        assert len({model.node_of(fid) for fid in rest}) > 1

    def test_load_aware_placement_beats_hash_on_the_hot_shard(self):
        workload = build_scenario(
            "hot-shard", seed=5, n_functions=40, days=2.0, training_days=1.0
        )

        def run(placement):
            cluster = dataclasses.replace(workload.cluster, placement=placement)
            return simulate_policy(
                IndexedFixedKeepAlivePolicy(10),
                workload.split.simulation,
                workload.split.training,
                warmup_minutes=60,
                cluster=cluster,
            )

        hashed = run("hash")
        balanced = run("least-loaded")
        assert balanced.cluster.load_imbalance < hashed.cluster.load_imbalance
        assert (
            balanced.cluster.capacity_cold_starts
            <= hashed.cluster.capacity_cold_starts
        )


class TestGoldenFingerprints:
    """Per-strategy golden fingerprints on the hot-shard workload.

    The default (hash) strategy's bit-for-bit stability is already pinned by
    the scenario-catalog goldens (ENGINE_VERSION=4, pre-placement); these pin
    each *new* strategy — and the migration machinery — so any accidental
    change to placement order, trim rules or migration accounting fails
    loudly.
    """

    SHAPE = dict(seed=9, n_functions=16, days=1.0, training_days=0.5)

    # Regenerated (ENGINE_VERSION 6) when _maybe_migrate learned to reserve
    # inbound units on the migration target: runs where two pressured sources
    # previously dogpiled one node now spread their migrants.
    GOLDEN = {
        "hash": "940911e6874c4b565ca12beb604f9c2b7fe754f605f78e5fcc731f406cc3d1f6",
        "least-loaded": "c8e6898303b39994bbba74800021be024aacc4b1295f7506947c91de31e542b8",
        "correlation-aware": "21d1eefc037ea625c0c35e1c299e8cca69e2cbdac0486ecde9385e794b5945a2",
    }

    def _run(self, placement, engine="vectorized"):
        workload = build_scenario("hot-shard", **self.SHAPE)
        cluster = dataclasses.replace(
            workload.cluster,
            placement=placement,
            pressure_threshold=0.75,
            pressure_minutes=3,
        )
        return simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            workload.split.simulation,
            workload.split.training,
            warmup_minutes=60,
            engine=engine,
            cluster=cluster,
            events=workload.events if engine == "event" else None,
        )

    def test_every_strategy_has_a_golden(self):
        assert set(self.GOLDEN) == set(placement_names())

    @pytest.mark.parametrize("placement", sorted(GOLDEN))
    def test_run_matches_the_golden_fingerprint(self, placement):
        assert self._run(placement).deterministic_fingerprint() == self.GOLDEN[placement]

    @pytest.mark.parametrize("placement", sorted(GOLDEN))
    def test_event_engine_matches_the_golden_too(self, placement):
        assert (
            self._run(placement, engine="event").deterministic_fingerprint()
            == self.GOLDEN[placement]
        )

    def test_strategies_produce_distinct_fingerprints(self):
        assert len(set(self.GOLDEN.values())) == len(self.GOLDEN)


class TestCacheKeys:
    def test_placement_is_part_of_the_sweep_cache_key(self):
        from repro.experiments import ParallelRunner, PolicySpec
        from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace

        trace = AzureTraceGenerator(GeneratorProfile.small(seed=3)).generate()
        split = split_trace(trace, training_days=2.0)
        spec = PolicySpec.of("fixed-10min-indexed")

        def key(cluster):
            runner = ParallelRunner({"t": split}, clusters={"t": cluster})
            return runner.cache_key(runner.cell("c", spec, "t"))

        base = ClusterModel(memory_capacity=8, n_nodes=2)
        assert key(base) == key(ClusterModel(memory_capacity=8, n_nodes=2))
        assert key(base) != key(dataclasses.replace(base, placement="least-loaded"))
        assert key(base) != key(dataclasses.replace(base, pressure_threshold=0.5))
