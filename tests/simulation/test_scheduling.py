"""Unit tests for the intra-node CPU scheduling disciplines."""

import numpy as np
import pytest

from repro.simulation.scheduling import (
    QUANTUM_S,
    CpuConfig,
    FifoScheduler,
    InvocationScheduler,
    LasScheduler,
    RoundRobinScheduler,
    SrtfScheduler,
    get_scheduler,
    register_scheduler,
    scheduler_names,
)

A = np.asarray


def _check_invariants(arrival, service, completion):
    arrival = A(arrival, dtype=float)
    service = A(service, dtype=float)
    assert completion.shape == arrival.shape
    assert np.all(completion >= arrival + service - 1e-6)
    assert np.all(np.isfinite(completion))


ALL_SCHEDULERS = ("fifo", "rr", "srtf", "las")


# --------------------------------------------------------------------- #
# Shared contract
# --------------------------------------------------------------------- #
class TestSchedulerContract:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_empty_input(self, name):
        done = get_scheduler(name).schedule(A([], dtype=float), A([], dtype=float), 2)
        assert done.size == 0

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_single_job_runs_immediately(self, name):
        done = get_scheduler(name).schedule(A([3.0]), A([2.0]), 1)
        assert done == pytest.approx([5.0])

    @pytest.mark.parametrize("name", ("rr", "srtf", "las"))
    def test_zero_service_completes_at_arrival_preemptive(self, name):
        # The preemptive disciplines dispatch zero-service jobs instantly
        # even while a long job holds the core.
        arrival = A([0.0, 0.0, 1.0])
        service = A([5.0, 0.0, 0.0])
        done = get_scheduler(name).schedule(arrival, service, 1)
        _check_invariants(arrival, service, done)
        assert done[1] == pytest.approx(0.0)
        assert done[2] == pytest.approx(1.0)

    def test_zero_service_queues_under_fifo(self):
        # fifo is non-preemptive: a zero-service job still waits its turn.
        done = FifoScheduler().schedule(A([0.0, 0.5]), A([5.0, 0.0]), 1)
        assert done[1] == pytest.approx(5.0)
        # ...but completes at arrival when the queue ahead of it is empty.
        done = FifoScheduler().schedule(A([0.0, 1.0]), A([0.0, 2.0]), 1)
        assert done[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_no_contention_when_cores_cover_jobs(self, name):
        arrival = A([0.0, 0.5, 1.0, 7.0])
        service = A([2.0, 1.0, 3.0, 0.25])
        done = get_scheduler(name).schedule(arrival, service, 4)
        assert done == pytest.approx(arrival + service)

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_unsorted_arrivals_and_conservation(self, name):
        rng = np.random.default_rng(7)
        arrival = rng.uniform(0.0, 60.0, size=40)
        service = rng.uniform(0.0, 2.0, size=40)
        service[::7] = 0.0
        done = get_scheduler(name).schedule(arrival, service, 3)
        _check_invariants(arrival, service, done)
        # Work conservation: the pool cannot finish everything faster than
        # the total demand spread over the cores allows.
        assert done.max() >= arrival.min() + service.sum() / 3 - 1e-6

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_deterministic(self, name):
        rng = np.random.default_rng(11)
        arrival = rng.uniform(0.0, 10.0, size=25)
        service = rng.uniform(0.0, 1.0, size=25)
        scheduler = get_scheduler(name)
        first = scheduler.schedule(arrival, service, 2)
        second = scheduler.schedule(arrival.copy(), service.copy(), 2)
        assert np.array_equal(first, second)


# --------------------------------------------------------------------- #
# Discipline-specific behaviour
# --------------------------------------------------------------------- #
class TestFifo:
    def test_orders_by_arrival(self):
        # Second arrival must wait for the first despite being much shorter.
        done = FifoScheduler().schedule(A([0.0, 0.1]), A([10.0, 0.1]), 1)
        assert done == pytest.approx([10.0, 10.1])

    def test_multi_core_earliest_free(self):
        # Two cores: jobs 0 and 1 start immediately; job 2 takes whichever
        # core frees first (job 1's, at t=1).
        done = FifoScheduler().schedule(A([0.0, 0.0, 0.0]), A([4.0, 1.0, 2.0]), 2)
        assert done == pytest.approx([4.0, 1.0, 3.0])

    def test_non_preemptive_convoy(self):
        # The defining fifo pathology: a long job convoys the shorts behind it.
        arrival = A([0.0, 0.5, 0.6])
        service = A([30.0, 0.1, 0.1])
        done = FifoScheduler().schedule(arrival, service, 1)
        assert done[1] >= 30.0 and done[2] >= 30.1


class TestSrtf:
    def test_short_job_preempts_long(self):
        # The long job starts alone; the short arrival takes the core and the
        # long job resumes after it, finishing late by the short's service.
        done = SrtfScheduler().schedule(A([0.0, 1.0]), A([10.0, 1.0]), 1)
        assert done[1] == pytest.approx(2.0)
        assert done[0] == pytest.approx(11.0)

    def test_beats_fifo_on_mean_sojourn(self):
        rng = np.random.default_rng(3)
        arrival = np.sort(rng.uniform(0.0, 30.0, size=60))
        service = rng.exponential(1.5, size=60)
        fifo = FifoScheduler().schedule(arrival, service, 2)
        srtf = SrtfScheduler().schedule(arrival, service, 2)
        assert (srtf - arrival).mean() <= (fifo - arrival).mean() + 1e-9


class TestRoundRobin:
    def test_quantum_sharing_interleaves(self):
        # Two equal jobs on one core finish within a quantum of each other,
        # where fifo would separate them by a full service time.
        service = A([10 * QUANTUM_S, 10 * QUANTUM_S])
        done = RoundRobinScheduler().schedule(A([0.0, 0.0]), service, 1)
        assert abs(done[0] - done[1]) <= QUANTUM_S + 1e-9
        assert done.max() == pytest.approx(20 * QUANTUM_S)


class TestLas:
    def test_fresh_arrival_runs_first(self):
        # By the time the short job arrives the long one has attained a lot
        # of CPU, so least-attained-service schedules the newcomer promptly.
        done = LasScheduler().schedule(A([0.0, 5.0]), A([10.0, 0.2]), 1)
        assert done[1] <= 5.0 + 0.2 + 2 * QUANTUM_S + 1e-9


# --------------------------------------------------------------------- #
# Registry and configuration
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_names(self):
        assert set(ALL_SCHEDULERS) <= set(scheduler_names())

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="fifo"):
            get_scheduler("lottery")

    def test_register_roundtrip(self):
        class EchoScheduler(InvocationScheduler):
            name = "test-echo"

            def schedule(self, arrival_s, service_s, cores):
                return arrival_s + service_s

        try:
            register_scheduler(EchoScheduler())
            assert get_scheduler("test-echo").name == "test-echo"
            assert CpuConfig(cores_per_node=1, scheduler="test-echo")
        finally:
            from repro.simulation import scheduling

            scheduling._SCHEDULERS.pop("test-echo", None)


class TestCpuConfig:
    def test_defaults(self):
        config = CpuConfig(cores_per_node=2)
        assert config.scheduler == "fifo"

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError, match="cores_per_node"):
            CpuConfig(cores_per_node=0)

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            CpuConfig(cores_per_node=2, scheduler="lottery")
