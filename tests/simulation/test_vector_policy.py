"""Tests for the indexed policy contract and the dict-API adapter."""

import numpy as np
import pytest

from repro.baselines import FixedKeepAlivePolicy
from repro.simulation import (
    DictPolicyAdapter,
    Simulator,
    VectorizedPolicy,
    simulate_policy,
)
from repro.traces import FunctionRecord, Trace
from repro.traces.schema import TraceMetadata


def small_trace(series_by_id, name="t"):
    records = [FunctionRecord(fid, f"app-{fid}", f"owner-{fid}") for fid in series_by_id]
    duration = len(next(iter(series_by_id.values())))
    return Trace(
        records,
        {fid: np.asarray(series) for fid, series in series_by_id.items()},
        TraceMetadata(name=name, duration_minutes=duration),
    )


class CountdownPolicy(VectorizedPolicy):
    """Minimal index-native policy: keep invoked functions for k minutes."""

    name = "countdown"

    def __init__(self, keep: int = 2) -> None:
        self.keep = keep

    def on_bind(self, index):
        self._expiry = np.full(index.n_functions, -(2**62), dtype=np.int64)

    def on_minute_indexed(self, minute, invoked, counts):
        if invoked.size:
            self._expiry[invoked] = minute + self.keep
        return self._expiry > minute


class TestVectorizedPolicy:
    def test_unbound_policy_raises_a_clear_error(self):
        policy = CountdownPolicy()
        with pytest.raises(RuntimeError, match="not bound"):
            policy.on_minute(0, {"f": 1})

    def test_simulator_binds_automatically(self):
        trace = small_trace({"f": [1, 0, 0, 1]})
        result = simulate_policy(CountdownPolicy(2), trace, warmup_minutes=0)
        stats = result.per_function["f"]
        # Invoked at 0, kept through minutes 1-2, evicted before 3 -> warm at
        # nothing; minute 3 arrives after expiry (0+2 < 3) -> cold again.
        assert stats.invocations == 2
        assert stats.cold_starts == 2

    def test_dict_bridge_matches_indexed_run(self):
        trace = small_trace({"a": [1, 0, 1, 0, 1], "b": [0, 1, 0, 1, 0]})
        vectorized = simulate_policy(CountdownPolicy(2), trace, warmup_minutes=0)
        reference = simulate_policy(
            CountdownPolicy(2), trace, warmup_minutes=0, engine="reference"
        )
        assert (
            vectorized.deterministic_fingerprint()
            == reference.deterministic_fingerprint()
        )

    def test_returned_mask_is_copied_by_the_engine(self):
        # The policy reuses one buffer; the engine must not alias it.
        trace = small_trace({"a": [1, 1, 1], "b": [1, 0, 0]})
        result = simulate_policy(CountdownPolicy(1), trace, warmup_minutes=0)
        assert result.per_function["a"].cold_starts == 1


class TestDictPolicyAdapter:
    def test_rejects_indexed_policies(self):
        with pytest.raises(TypeError, match="already implements"):
            DictPolicyAdapter(CountdownPolicy())

    def test_adapter_impersonates_the_wrapped_policy(self):
        wrapped = FixedKeepAlivePolicy(10)
        adapter = DictPolicyAdapter(wrapped)
        assert adapter.name == "fixed-10min"

    def test_adapter_tracks_extra_resident_ids(self):
        class ForeignPolicy(FixedKeepAlivePolicy):
            def on_minute(self, minute, invocations):
                return super().on_minute(minute, invocations) | {"ghost"}

        trace = small_trace({"f": [1, 0, 1, 0]})
        adapter = DictPolicyAdapter(ForeignPolicy(10))
        adapter.bind_index(trace.invocation_index())
        adapter.seed_resident(set())
        mask = adapter.on_minute_indexed(0, np.array([0]), np.array([1]))
        assert mask[0]
        assert "ghost" in adapter.extra_resident

    def test_extra_ids_are_charged_like_the_reference_engine(self):
        class ForeignPolicy(FixedKeepAlivePolicy):
            def on_minute(self, minute, invocations):
                return super().on_minute(minute, invocations) | {"ghost"}

        trace = small_trace({"f": [1, 0, 1, 0]})
        vectorized = simulate_policy(ForeignPolicy(10), trace, warmup_minutes=0)
        reference = simulate_policy(
            ForeignPolicy(10), trace, warmup_minutes=0, engine="reference"
        )
        assert (
            vectorized.deterministic_fingerprint()
            == reference.deterministic_fingerprint()
        )
        assert vectorized.per_function["ghost"].wasted_memory_time > 0

    def test_warmup_reaches_indexed_policies_through_the_bridge(self):
        training = small_trace({"f": [0, 0, 0, 0, 1]}, name="train")
        simulation = small_trace({"f": [1, 0, 0]}, name="sim")
        simulator = Simulator(simulation, training, warmup_minutes=5)
        result = simulator.run(CountdownPolicy(3))
        # Training's last invocation at warm-up minute -1 keeps the instance
        # resident through simulation minute 0.
        assert result.per_function["f"].cold_starts == 0
