"""Sharded execution: partition/merge exactness, fallbacks, edge cases.

The tentpole property under test: for a shard-safe policy, splitting the
function population into per-node partitions, simulating each partition
independently and merging the per-shard results must reproduce the unsharded
run's ``deterministic_fingerprint`` bit for bit — across every registered
placement strategy and every shard-capable engine.  Configurations the
decomposition cannot serve must fall back to the unsharded loop with a
:class:`ShardFallbackWarning`, never silently change results.
"""

import warnings

import numpy as np
import pytest

from harness import (
    PLACEMENTS,
    SHARD_ENGINES,
    SHARD_SAFE_POLICY_PAIRS,
    assert_shard_equivalence,
    random_split,
)
from repro.baselines import FixedKeepAlivePolicy, IndexedFixedKeepAlivePolicy
from repro.core import SpesPolicy
from repro.simulation import (
    ClusterModel,
    CpuConfig,
    EventConfig,
    ShardFallbackWarning,
    Simulator,
    shard_assignment,
    simulate_policy,
)
from repro.simulation.results import SimulationResult
from repro.traces import AzureTraceGenerator, GeneratorProfile, SparseTrace, split_trace

SEED = 11


@pytest.fixture(scope="module")
def workload():
    return random_split(SEED)


@pytest.fixture(scope="module")
def tiny_split():
    """A 3-function workload — smaller than any useful shard count."""
    profile = GeneratorProfile(
        n_functions=3, duration_days=1.0, unseen_window_days=0.25, seed=5
    )
    return split_trace(AzureTraceGenerator(profile).generate(), training_days=0.5)


# --------------------------------------------------------------------------- #
# Partition assignment
# --------------------------------------------------------------------------- #
class TestShardAssignment:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_every_function_lands_on_exactly_one_shard(self, workload, placement):
        index = workload.simulation.invocation_index()
        assignment = shard_assignment(
            4, workload.simulation, placement, training_trace=workload.training
        )
        assert assignment.shape == (index.n_functions,)
        assert assignment.min() >= 0 and assignment.max() < 4
        pieces = [np.flatnonzero(assignment == shard) for shard in range(4)]
        np.testing.assert_array_equal(
            np.sort(np.concatenate(pieces)), np.arange(index.n_functions)
        )

    def test_assignment_is_deterministic(self, workload):
        first = shard_assignment(3, workload.simulation, "least-loaded")
        second = shard_assignment(3, workload.simulation, "least-loaded")
        np.testing.assert_array_equal(first, second)

    def test_invalid_shard_count_rejected(self, workload):
        with pytest.raises(ValueError):
            shard_assignment(0, workload.simulation)


# --------------------------------------------------------------------------- #
# Trace sharding (dense and CSR)
# --------------------------------------------------------------------------- #
class TestTraceShard:
    def test_dense_shard_keeps_series_and_records(self, workload):
        trace = workload.simulation
        ids = trace.function_ids
        positions = np.arange(0, len(ids), 2)
        shard = trace.shard(positions)
        assert shard.duration_minutes == trace.duration_minutes
        assert shard.function_ids == [ids[p] for p in positions.tolist()]
        for fid in shard.function_ids:
            np.testing.assert_array_equal(shard.series(fid), trace.series(fid))

    def test_sparse_shard_matches_dense_shard(self, workload):
        dense = workload.simulation
        sparse = SparseTrace.from_dense(dense)
        positions = np.arange(1, len(dense.function_ids), 3)
        a, b = dense.shard(positions), sparse.shard(positions)
        assert isinstance(b, SparseTrace)
        assert a.function_ids == b.function_ids
        ia, ib = a.invocation_index(), b.invocation_index()
        np.testing.assert_array_equal(ia.indptr, ib.indptr)
        np.testing.assert_array_equal(ia.indices, ib.indices)
        np.testing.assert_array_equal(ia.counts, ib.counts)

    def test_shard_union_preserves_every_invocation(self, workload):
        trace = SparseTrace.from_dense(workload.simulation)
        n = len(trace.function_ids)
        assignment = shard_assignment(3, trace, "hash")
        total = sum(
            int(trace.shard(np.flatnonzero(assignment == s)).invocation_index().counts.sum())
            for s in range(3)
            if np.flatnonzero(assignment == s).size
        )
        assert total == int(trace.invocation_index().counts.sum())
        assert sum(
            len(trace.shard(np.flatnonzero(assignment == s)).function_ids)
            for s in range(3)
            if np.flatnonzero(assignment == s).size
        ) == n

    @pytest.mark.parametrize("sparse", [False, True], ids=["dense", "sparse"])
    def test_invalid_positions_rejected(self, workload, sparse):
        trace = workload.simulation
        if sparse:
            trace = SparseTrace.from_dense(trace)
        n = len(trace.function_ids)
        with pytest.raises(ValueError):
            trace.shard(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            trace.shard([n])
        with pytest.raises(ValueError):
            trace.shard([-1])
        with pytest.raises(ValueError):
            trace.shard([2, 1])
        with pytest.raises(ValueError):
            trace.shard([1, 1])


# --------------------------------------------------------------------------- #
# Sharded vs unsharded fingerprints
# --------------------------------------------------------------------------- #
class TestShardedEquivalence:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize(
        "dict_factory,indexed_factory", SHARD_SAFE_POLICY_PAIRS
    )
    def test_matrix(self, workload, placement, dict_factory, indexed_factory):
        """Placements × engines × shard-safe pairs, shards=3."""
        indexed = assert_shard_equivalence(
            indexed_factory, workload, shards=3, shard_placement=placement
        )
        dict_fp = assert_shard_equivalence(
            dict_factory,
            workload,
            shards=3,
            shard_placement=placement,
            engines=("vectorized",),
        )
        assert indexed == dict_fp

    def test_empty_shards_contribute_nothing(self, tiny_split):
        """More shards than functions: empty partitions merge as zeros."""
        whole = simulate_policy(
            FixedKeepAlivePolicy(5),
            tiny_split.simulation,
            tiny_split.training,
            warmup_minutes=60,
        )
        sharded = simulate_policy(
            FixedKeepAlivePolicy(5),
            tiny_split.simulation,
            tiny_split.training,
            warmup_minutes=60,
            shards=6,
        )
        assert (
            sharded.deterministic_fingerprint() == whole.deterministic_fingerprint()
        )

    def test_cluster_sharded_equivalence(self, workload):
        """Shard-by-node: n_nodes == shards, hash placement, divisible capacity."""
        cluster = ClusterModel(memory_capacity=8, n_nodes=4, placement="hash")
        assert_shard_equivalence(
            lambda: IndexedFixedKeepAlivePolicy(10),
            workload,
            shards=4,
            cluster=cluster,
            engines=SHARD_ENGINES,
        )

    def test_cpu_counts_survive_sharding(self, workload):
        """The CPU stage's *counts* are shard-exact; its *samples* are not.

        Each shard draws arrival jitter from its own seeded stream, so the
        per-event CPU waits (functions of the random arrival offsets) differ
        between the sharded and unsharded runs by design.  The count-based
        accounting must not: every event is scheduled exactly once, and with
        an SLO below every execution time the violation verdict is
        jitter-independent, so both totals must survive the partition/merge
        round trip exactly.
        """
        cluster = ClusterModel(memory_capacity=8, n_nodes=4, placement="hash")
        events = EventConfig(
            seed=7,
            cpu=CpuConfig(cores_per_node=1, scheduler="fifo"),
            slo_ms=1e-6,  # below every execution: violations == total events
        )
        runs = {}
        for shards in (0, 4):
            result = simulate_policy(
                IndexedFixedKeepAlivePolicy(10),
                workload.simulation,
                workload.training,
                warmup_minutes=60,
                engine="event",
                cluster=cluster,
                events=events,
                shards=shards,
            )
            runs[shards] = result
        whole, sharded = runs[0].latency, runs[4].latency
        assert (
            runs[4].deterministic_fingerprint()
            == runs[0].deterministic_fingerprint()
        )
        assert sharded.cpu_scheduled_events == whole.cpu_scheduled_events
        assert sharded.cpu_scheduled_events == whole.total_events
        assert sharded.slo_checked_events == whole.slo_checked_events
        assert sharded.slo_violations == whole.slo_violations
        assert sharded.slo_violations == whole.total_events
        assert sharded.slowdown.size == whole.slowdown.size
        # Independent per-shard jitter streams: the sample arrays diverge.
        assert not np.array_equal(
            np.sort(sharded.slowdown), np.sort(whole.slowdown)
        )


# --------------------------------------------------------------------------- #
# Fallback diagnostics
# --------------------------------------------------------------------------- #
class TestShardFallback:
    def _run(self, workload, policy, **kwargs):
        simulator = Simulator(
            workload.simulation,
            training_trace=workload.training,
            warmup_minutes=60,
            **kwargs,
        )
        return simulator.run(policy)

    def test_non_shard_safe_policy_warns_and_matches_unsharded(self, workload):
        whole = self._run(workload, SpesPolicy())
        with pytest.warns(ShardFallbackWarning, match="shard_safe"):
            sharded = self._run(workload, SpesPolicy(), shards=2)
        assert (
            sharded.deterministic_fingerprint() == whole.deterministic_fingerprint()
        )

    def test_reference_engine_falls_back(self, workload):
        with pytest.warns(ShardFallbackWarning, match="reference"):
            self._run(workload, FixedKeepAlivePolicy(5), shards=2, engine="reference")

    def test_migration_cluster_falls_back(self, workload):
        cluster = ClusterModel(
            memory_capacity=8, n_nodes=2, pressure_threshold=0.5
        )
        with pytest.warns(ShardFallbackWarning, match="migration"):
            self._run(workload, FixedKeepAlivePolicy(5), shards=2, cluster=cluster)

    def test_node_count_mismatch_falls_back(self, workload):
        cluster = ClusterModel(memory_capacity=9, n_nodes=3)
        with pytest.warns(ShardFallbackWarning):
            self._run(workload, FixedKeepAlivePolicy(5), shards=2, cluster=cluster)

    def test_indivisible_capacity_falls_back(self, workload):
        cluster = ClusterModel(memory_capacity=7, n_nodes=2)
        with pytest.warns(ShardFallbackWarning):
            self._run(workload, FixedKeepAlivePolicy(5), shards=2, cluster=cluster)

    def test_cpu_pool_without_cluster_falls_back(self, workload):
        # One node-wide pool shared by every function cannot be partitioned
        # without changing the contention each invocation sees.
        events = EventConfig(cpu=CpuConfig(cores_per_node=2))
        with pytest.warns(ShardFallbackWarning, match="CPU pool"):
            self._run(
                workload,
                FixedKeepAlivePolicy(5),
                shards=2,
                engine="event",
                events=events,
            )

    def test_single_shard_runs_unsharded_without_warning(self, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardFallbackWarning)
            self._run(workload, FixedKeepAlivePolicy(5), shards=1)

    def test_negative_shards_rejected(self, workload):
        with pytest.raises(ValueError):
            Simulator(workload.simulation, shards=-1)


# --------------------------------------------------------------------------- #
# Result merging
# --------------------------------------------------------------------------- #
class TestMergeShards:
    @pytest.fixture(scope="class")
    def halves(self, workload):
        simulator = Simulator(
            workload.simulation, training_trace=workload.training, warmup_minutes=60
        )
        n = len(workload.simulation.function_ids)
        first = simulator.shard_simulator(np.arange(0, n, 2))
        second = simulator.shard_simulator(np.arange(1, n, 2))
        return (
            first.run(FixedKeepAlivePolicy(5)),
            second.run(FixedKeepAlivePolicy(5)),
        )

    def test_merge_sums_exact_totals(self, workload, halves):
        merged = SimulationResult.merge_shards(halves)
        whole = simulate_policy(
            FixedKeepAlivePolicy(5),
            workload.simulation,
            workload.training,
            warmup_minutes=60,
        )
        assert (
            merged.deterministic_fingerprint() == whole.deterministic_fingerprint()
        )

    def test_none_shard_contributes_zeros(self, halves):
        first, _ = halves
        merged = SimulationResult.merge_shards([first, None])
        assert merged.deterministic_fingerprint() == first.deterministic_fingerprint()

    def test_all_none_rejected(self):
        with pytest.raises(ValueError):
            SimulationResult.merge_shards([None, None])

    def test_overlapping_partitions_rejected(self, halves):
        first, _ = halves
        with pytest.raises(ValueError, match="overlap"):
            SimulationResult.merge_shards([first, first])

    def test_duration_mismatch_rejected(self, workload, tiny_split, halves):
        first, _ = halves
        other = simulate_policy(
            FixedKeepAlivePolicy(5),
            tiny_split.simulation,
            tiny_split.training,
            warmup_minutes=60,
        )
        with pytest.raises(ValueError, match="duration"):
            SimulationResult.merge_shards([first, other])

    def test_policy_name_mismatch_rejected(self, workload, halves):
        first, _ = halves
        simulator = Simulator(
            workload.simulation, training_trace=workload.training, warmup_minutes=60
        )
        n = len(workload.simulation.function_ids)
        other = simulator.shard_simulator(np.arange(1, n, 2)).run(SpesPolicy())
        with pytest.raises(ValueError, match="polic"):
            SimulationResult.merge_shards([first, other])
