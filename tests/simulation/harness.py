"""Property-based equivalence harness for the engine/policy matrix.

The repository now carries three engines (``vectorized``, ``reference``,
``event``) and a growing family of index-native policy ports that must be
*decision-identical* to their dict-based twins.  Rather than each test file
hand-rolling its own workload and comparison loop, this module centralizes:

* **randomized workload generation** — seeded, structurally diverse
  train/simulation splits drawn from randomized generator profiles
  (:func:`random_split`), plus seeded capacity models derived from the
  workload itself (:func:`random_cluster`);
* **the policy-pair catalog** — every dict policy with an index-native twin
  (:data:`POLICY_PAIRS`), which new ports extend with one line;
* **fingerprint comparison** — :func:`collect_fingerprints` /
  :func:`assert_cross_engine_equivalence` run one policy through every
  (implementation × engine) combination and compare
  :meth:`~repro.simulation.results.SimulationResult.deterministic_fingerprint`,
  the strongest equality the result type offers (per-function statistics,
  the full memory series, WMT, EMCR, cluster stats).

The property under test: for any seeded workload, any registered policy pair
and any capacity model, all engine/implementation combinations produce one
fingerprint — the event engine's sub-minute expansion changes *observations*
(latency), never minute-granular *state*.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

import numpy as np
import pytest

from repro.baselines import (
    DefusePolicy,
    FaasCachePolicy,
    FixedKeepAlivePolicy,
    HybridApplicationPolicy,
    HybridFunctionPolicy,
    IndexedDefusePolicy,
    IndexedFaasCachePolicy,
    IndexedFixedKeepAlivePolicy,
    IndexedHybridApplicationPolicy,
    IndexedHybridFunctionPolicy,
    IndexedLcsPolicy,
    LcsPolicy,
)
from repro.core import IndexedSpesPolicy, SpesPolicy
from repro.simulation import (
    ClusterModel,
    EventConfig,
    placement_names,
    simulate_policy,
)
from repro.traces import AzureTraceGenerator, GeneratorProfile, TraceSplit, split_trace

#: Engines that support the uncapped setting (all of them).  The
#: ``event-feedback`` engine is included deliberately: its feedback hook is a
#: no-op on every paired policy, so fingerprints must match the other
#: engines' — the contract that lets pre-feedback policies run unchanged
#: under the closed loop.
ALL_ENGINES = ("vectorized", "reference", "event", "event-feedback")
#: Engines that support the capacity-constrained cluster mode.
MASK_ENGINES = ("vectorized", "event", "event-feedback")
#: Engines that support sharded execution — the reference engine is the
#: executable specification of the *unsharded* loop and always falls back.
SHARD_ENGINES = MASK_ENGINES
#: Every registered placement strategy, for the placement × pairs matrix —
#: derived from the registry so a newly registered strategy joins the
#: equivalence matrix automatically.
PLACEMENTS = tuple(placement_names())

#: Every dict policy with an index-native twin, as ``pytest.param`` entries of
#: ``(dict_factory, indexed_factory)``.  New ports join the whole equivalence
#: matrix by adding one line here.
POLICY_PAIRS = [
    pytest.param(
        lambda: FixedKeepAlivePolicy(10),
        lambda: IndexedFixedKeepAlivePolicy(10),
        id="fixed-10min",
    ),
    pytest.param(HybridFunctionPolicy, IndexedHybridFunctionPolicy, id="hybrid-function"),
    pytest.param(
        HybridApplicationPolicy, IndexedHybridApplicationPolicy, id="hybrid-application"
    ),
    pytest.param(SpesPolicy, IndexedSpesPolicy, id="spes"),
    pytest.param(
        lambda: FaasCachePolicy(capacity=15),
        lambda: IndexedFaasCachePolicy(capacity=15),
        id="faascache",
    ),
    pytest.param(DefusePolicy, IndexedDefusePolicy, id="defuse"),
    pytest.param(LcsPolicy, IndexedLcsPolicy, id="lcs"),
]

#: The pairs whose members declare the function-local (``shard_safe``)
#: contract — derived from the policies themselves so a pair joins the
#: sharded equivalence matrix the moment its twins set the flag.
SHARD_SAFE_POLICY_PAIRS = [
    param
    for param in POLICY_PAIRS
    if all(getattr(factory(), "shard_safe", False) for factory in param.values)
]

#: Archetypes the randomized mixes draw from (chained archetypes need parent
#: wiring that the generator handles internally).
_MIX_ARCHETYPES = (
    "always_warm",
    "periodic",
    "quasi_periodic",
    "dense_poisson",
    "bursty",
    "pulsed",
    "chained",
    "rare_possible",
    "rare_unknown",
)


def random_profile(seed: int) -> GeneratorProfile:
    """A randomized (but seed-deterministic) synthetic workload profile.

    Population size, trace length, the archetype mix and the drifting
    fraction all vary with the seed, so repeated draws explore structurally
    different workloads — dense vs sparse, periodic-heavy vs bursty-heavy —
    instead of re-testing one shape with different noise.
    """
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.ones(len(_MIX_ARCHETYPES)))
    mix = {name: float(weight) for name, weight in zip(_MIX_ARCHETYPES, weights)}
    return GeneratorProfile(
        n_functions=int(rng.integers(24, 56)),
        duration_days=float(rng.uniform(1.5, 3.0)),
        archetype_mix=mix,
        drifting_fraction=float(rng.uniform(0.0, 0.25)),
        unseen_fraction=float(rng.uniform(0.0, 0.08)),
        unseen_window_days=0.5,
        seed=seed,
    )


def random_split(seed: int, training_fraction: float = 0.5) -> TraceSplit:
    """Generate a randomized workload and split it for simulation."""
    profile = random_profile(seed)
    trace = AzureTraceGenerator(profile).generate()
    training_days = max(0.25, profile.duration_days * training_fraction)
    return split_trace(trace, training_days=training_days)


def random_cluster(
    seed: int,
    split: TraceSplit,
    placement: str = "hash",
    migration: bool = False,
) -> ClusterModel:
    """A seeded capacity model that actually pressures the given workload.

    Capacity is a small random multiple of the simulation window's mean
    per-minute active set (the ``capacity-squeeze`` recipe), sharded over a
    random number of nodes, so the arbiter evicts for real instead of
    rubber-stamping every declaration.  ``placement`` selects the
    function-to-node strategy, and ``migration=True`` additionally draws a
    seeded sustained-pressure threshold so re-placement fires for real.
    """
    rng = np.random.default_rng(seed ^ 0xC1A5)
    index = split.simulation.invocation_index()
    active_per_minute = np.diff(index.indptr)
    mean_active = float(active_per_minute.mean()) if active_per_minute.size else 1.0
    n_nodes = int(rng.integers(1, 5))
    squeeze = float(rng.uniform(1.5, 4.0))
    capacity = max(n_nodes, int(round(mean_active * squeeze)))
    pressure_threshold = float(rng.uniform(0.4, 0.8)) if migration else None
    pressure_minutes = int(rng.integers(2, 6))
    return ClusterModel(
        memory_capacity=capacity,
        n_nodes=n_nodes,
        placement=placement,
        pressure_threshold=pressure_threshold,
        pressure_minutes=pressure_minutes,
    )


def collect_fingerprints(
    factories: Dict[str, Callable[[], object]],
    split: TraceSplit,
    engines: Iterable[str] = ALL_ENGINES,
    cluster: ClusterModel | None = None,
    events: EventConfig | None = None,
    warmup_minutes: int = 180,
    shards: int = 0,
    shard_placement: str = "hash",
) -> Dict[str, str]:
    """Fingerprints of every (implementation × engine) combination.

    ``factories`` maps an implementation label to a zero-argument policy
    factory; each build is fresh, so no state leaks between runs.  The event
    config only applies to ``event`` runs (the other engines reject it).
    ``shards``/``shard_placement`` select the sharded execution mode.
    """
    fingerprints: Dict[str, str] = {}
    for impl, factory in factories.items():
        for engine in engines:
            result = simulate_policy(
                factory(),
                split.simulation,
                split.training,
                warmup_minutes=warmup_minutes,
                engine=engine,
                cluster=cluster,
                events=events if engine == "event" else None,
                shards=shards,
                shard_placement=shard_placement,
            )
            fingerprints[f"{impl}/{engine}"] = result.deterministic_fingerprint()
    return fingerprints


def assert_cross_engine_equivalence(
    dict_factory: Callable[[], object],
    indexed_factory: Callable[[], object],
    split: TraceSplit,
    cluster: ClusterModel | None = None,
    events: EventConfig | None = None,
    warmup_minutes: int = 180,
) -> str:
    """Assert one fingerprint across twins × engines; return it.

    The reference engine is exercised only in the uncapped setting (it is
    the executable specification of exactly that), so capped comparisons run
    over the mask-based engines.
    """
    engines = ALL_ENGINES if cluster is None else MASK_ENGINES
    fingerprints = collect_fingerprints(
        {"dict": dict_factory, "indexed": indexed_factory},
        split,
        engines=engines,
        cluster=cluster,
        events=events,
        warmup_minutes=warmup_minutes,
    )
    distinct = set(fingerprints.values())
    assert len(distinct) == 1, f"fingerprints diverged: {fingerprints}"
    return distinct.pop()


def assert_shard_equivalence(
    factory: Callable[[], object],
    split: TraceSplit,
    shards: int,
    shard_placement: str = "hash",
    engines: Iterable[str] = SHARD_ENGINES,
    cluster: ClusterModel | None = None,
    warmup_minutes: int = 180,
) -> str:
    """Assert sharded == unsharded fingerprints per engine; return the hash.

    The core exactness claim of the sharded execution mode: for a shard-safe
    policy (and, when capped, a decomposable capacity model) partitioning the
    function population and merging the per-shard results must reproduce the
    unsharded run's :meth:`deterministic_fingerprint` bit for bit.
    """
    whole = collect_fingerprints(
        {"whole": factory},
        split,
        engines=engines,
        cluster=cluster,
        warmup_minutes=warmup_minutes,
    )
    sharded = collect_fingerprints(
        {"sharded": factory},
        split,
        engines=engines,
        cluster=cluster,
        warmup_minutes=warmup_minutes,
        shards=shards,
        shard_placement=shard_placement,
    )
    distinct = set(whole.values()) | set(sharded.values())
    assert len(distinct) == 1, (
        f"sharded/unsharded fingerprints diverged "
        f"(shards={shards}, placement={shard_placement}): {whole} vs {sharded}"
    )
    return distinct.pop()
