"""Measured-memory (MB-mode) accounting: invariance, exactness, fallbacks.

Three contracts guard the measured-memory mode:

* **Unit-mode invariance** — attaching footprints to a trace must not move a
  single bit of a unit-mode run, on any engine: the default accounting never
  reads ``FunctionRecord.memory_mb``.
* **MB-mode exactness** — MB mode adds KB-denominated series/aggregates on
  top of the count-based numbers without changing them; all mask-based
  engines agree on one fingerprint; sharded runs merge to the unsharded
  fingerprint bit for bit (integer-KB sums decompose exactly).
* **Graceful degradation** — an empty join (no footprints anywhere) falls
  back to :data:`DEFAULT_MEMORY_MB` with finite, NaN-free MB statistics;
  the reference engine and MB-denominated clusters reject unsupported
  combinations loudly instead of silently mis-accounting.
"""

from dataclasses import replace
from typing import Dict

import numpy as np
import pytest

from harness import ALL_ENGINES, MASK_ENGINES, random_split
from repro.baselines import IndexedFixedKeepAlivePolicy
from repro.core import IndexedSpesPolicy
from repro.simulation import ClusterModel, simulate_policy
from repro.simulation.memory import DEFAULT_MEMORY_MB, footprint_kb_vector
from repro.traces import Trace, TraceSplit

SEED = 23


def footprinted_split(
    split: TraceSplit, seed: int = 7, coverage: float = 0.75
) -> TraceSplit:
    """The same split with seeded measured footprints on ``coverage`` of it.

    Footprints are assigned per function id (identical across the training
    and simulation traces, like a real ingestion join); the rest keep
    ``memory_mb=None`` to exercise the default-footprint fallback alongside
    measured values.
    """
    rng = np.random.default_rng(seed)
    footprints: Dict[str, float | None] = {
        fid: float(rng.uniform(64.0, 512.0)) if rng.random() < coverage else None
        for fid in split.simulation.function_ids
    }

    def apply(trace):
        records = [
            replace(record, memory_mb=footprints.get(record.function_id))
            for record in trace.records()
        ]
        counts = {fid: trace.series(fid) for fid in trace.function_ids}
        return Trace(records, counts, trace.metadata)

    return TraceSplit(training=apply(split.training), simulation=apply(split.simulation))


@pytest.fixture(scope="module")
def plain_split():
    return random_split(SEED)


@pytest.fixture(scope="module")
def measured_split(plain_split):
    return footprinted_split(plain_split)


def run(split, *, engine="vectorized", memory_mode="unit", shards=0, cluster=None):
    return simulate_policy(
        IndexedFixedKeepAlivePolicy(10),
        split.simulation,
        split.training,
        warmup_minutes=60,
        engine=engine,
        memory_mode=memory_mode,
        shards=shards,
        cluster=cluster,
    )


# --------------------------------------------------------------------------- #
# Unit-mode invariance
# --------------------------------------------------------------------------- #
class TestUnitModeInvariance:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_footprints_do_not_move_unit_mode(
        self, plain_split, measured_split, engine
    ):
        bare = run(plain_split, engine=engine)
        measured = run(measured_split, engine=engine)
        assert (
            bare.deterministic_fingerprint() == measured.deterministic_fingerprint()
        )

    def test_unit_mode_results_carry_no_kb_series(self, measured_split):
        result = run(measured_split)
        assert result.memory_mode == "unit"
        assert result.memory_usage_kb is None
        assert result.total_wasted_memory_kb == 0


# --------------------------------------------------------------------------- #
# MB-mode exactness
# --------------------------------------------------------------------------- #
class TestMbMode:
    def test_count_based_numbers_are_untouched(self, measured_split):
        unit = run(measured_split, memory_mode="unit")
        mb = run(measured_split, memory_mode="mb")
        np.testing.assert_array_equal(mb.memory_usage, unit.memory_usage)
        assert mb.total_wasted_memory_time == unit.total_wasted_memory_time
        assert mb.emcr == unit.emcr
        for fid, stats in unit.per_function.items():
            assert mb.per_function[fid].cold_starts == stats.cold_starts
            assert mb.per_function[fid].invocations == stats.invocations

    def test_kb_series_matches_the_footprint_vector(self, measured_split):
        """Loaded KB per minute is exactly the sum of resident footprints."""
        mb = run(measured_split, memory_mode="mb")
        kb = footprint_kb_vector(measured_split.simulation.records())
        assert mb.memory_usage_kb is not None
        assert mb.memory_usage_kb.dtype == np.int64
        # Bounded by everything loaded at once; positive whenever anything is.
        assert mb.memory_usage_kb.max() <= kb.sum()
        assert ((mb.memory_usage_kb > 0) == (mb.memory_usage > 0)).all()

    @pytest.mark.parametrize("engine", MASK_ENGINES)
    def test_mask_engines_agree(self, measured_split, engine):
        baseline = run(measured_split, engine="vectorized", memory_mode="mb")
        other = run(measured_split, engine=engine, memory_mode="mb")
        assert (
            other.deterministic_fingerprint() == baseline.deterministic_fingerprint()
        )

    @pytest.mark.parametrize("engine", ("vectorized", "event"))
    def test_sharded_merge_is_exact(self, measured_split, engine):
        whole = run(measured_split, engine=engine, memory_mode="mb")
        sharded = run(measured_split, engine=engine, memory_mode="mb", shards=3)
        assert (
            sharded.deterministic_fingerprint() == whole.deterministic_fingerprint()
        )
        np.testing.assert_array_equal(sharded.memory_usage_kb, whole.memory_usage_kb)
        assert sharded.total_wasted_memory_kb == whole.total_wasted_memory_kb

    def test_mb_fingerprint_differs_from_unit(self, measured_split):
        """MB results must never collide with unit results in a cache."""
        unit = run(measured_split, memory_mode="unit")
        mb = run(measured_split, memory_mode="mb")
        assert unit.deterministic_fingerprint() != mb.deterministic_fingerprint()

    def test_spes_under_mb_capacity_cluster(self, measured_split):
        """An MB-denominated cluster admits by footprint without NaNs."""
        kb = footprint_kb_vector(measured_split.simulation.records())
        capacity_mb = int(kb.sum() // 1024 // 3) or 1
        cluster = ClusterModel(
            memory_capacity=capacity_mb, n_nodes=2, capacity_unit="mb"
        )
        result = simulate_policy(
            IndexedSpesPolicy(),
            measured_split.simulation,
            measured_split.training,
            warmup_minutes=60,
            engine="vectorized",
            memory_mode="mb",
            cluster=cluster,
        )
        assert result.cluster is not None
        assert np.isfinite(result.emcr_mb)
        assert result.total_wasted_memory_kb >= 0


# --------------------------------------------------------------------------- #
# Fallbacks and rejections
# --------------------------------------------------------------------------- #
class TestFallbacks:
    def test_empty_join_falls_back_to_default_footprint(self, plain_split):
        """No footprints anywhere: every function weighs DEFAULT_MEMORY_MB."""
        default_kb = round(DEFAULT_MEMORY_MB * 1024)
        result = run(plain_split, memory_mode="mb")
        np.testing.assert_array_equal(
            result.memory_usage_kb, result.memory_usage * default_kb
        )
        assert result.total_wasted_memory_kb == (
            result.total_wasted_memory_time * default_kb
        )
        # Uniform weights: the weighted ratio collapses to the count ratio.
        assert result.emcr_mb == result.emcr
        assert np.isfinite(result.emcr_mb)
        assert np.isfinite(result.average_memory_usage_mb)
        assert np.isfinite(result.wasted_memory_mb_minutes)

    def test_reference_engine_rejects_mb_mode(self, measured_split):
        with pytest.raises(ValueError, match="mask-based"):
            run(measured_split, engine="reference", memory_mode="mb")

    def test_mb_cluster_requires_mb_mode(self, measured_split):
        cluster = ClusterModel(memory_capacity=512, n_nodes=2, capacity_unit="mb")
        with pytest.raises(ValueError, match="memory_mode='mb'"):
            run(measured_split, memory_mode="unit", cluster=cluster)

    def test_unknown_memory_mode_rejected(self, measured_split):
        with pytest.raises(ValueError, match="memory_mode"):
            run(measured_split, memory_mode="megabytes")
