"""Tests for the provisioning-policy base classes."""

from repro.simulation import AlwaysWarmPolicy, NoKeepAlivePolicy
from repro.traces import FunctionRecord


class TestNoKeepAlive:
    def test_returns_empty_set(self):
        policy = NoKeepAlivePolicy()
        policy.prepare([FunctionRecord("f", "a", "o")])
        assert policy.on_minute(0, {"f": 1}) == set()

    def test_known_functions_recorded(self):
        policy = NoKeepAlivePolicy()
        records = [FunctionRecord("f", "a", "o"), FunctionRecord("g", "a", "o")]
        policy.prepare(records)
        assert set(policy.known_functions) == {"f", "g"}


class TestAlwaysWarm:
    def test_all_known_functions_resident(self):
        policy = AlwaysWarmPolicy()
        policy.prepare([FunctionRecord("f", "a", "o"), FunctionRecord("g", "a", "o")])
        assert policy.on_minute(0, {}) == {"f", "g"}

    def test_explicit_subset(self):
        policy = AlwaysWarmPolicy(function_ids=["f"])
        policy.prepare([FunctionRecord("f", "a", "o"), FunctionRecord("g", "a", "o")])
        assert policy.on_minute(0, {}) == {"f"}

    def test_newly_seen_functions_added(self):
        policy = AlwaysWarmPolicy(function_ids=["f"])
        policy.prepare([FunctionRecord("f", "a", "o")])
        resident = policy.on_minute(0, {"new": 1})
        assert "new" in resident
        assert "new" in policy.on_minute(1, {})
