"""Randomized equivalence: engines x policy implementations (satellite #1).

Seeded synthetic workloads are driven through every combination of

* engine:   ``vectorized`` vs ``reference`` (the executable specification);
* policy:   index-native :class:`VectorizedPolicy` ports vs their unchanged
  dict-based twins (adapted transparently by the engine).

All four runs of a (workload, policy pair) cell must produce identical
``deterministic_fingerprint()``\\ s — the strongest equality the result type
offers (per-function stats, the whole memory series, WMT, EMCR).
"""

import pytest

from repro.baselines import (
    FixedKeepAlivePolicy,
    HybridApplicationPolicy,
    HybridFunctionPolicy,
    IndexedFixedKeepAlivePolicy,
    IndexedHybridApplicationPolicy,
    IndexedHybridFunctionPolicy,
)
from repro.core import IndexedSpesPolicy, SpesPolicy
from repro.simulation import simulate_policy
from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace

SEEDS = (11, 23)

PAIRS = [
    pytest.param(
        lambda: FixedKeepAlivePolicy(10),
        lambda: IndexedFixedKeepAlivePolicy(10),
        id="fixed-10min",
    ),
    pytest.param(HybridFunctionPolicy, IndexedHybridFunctionPolicy, id="hybrid-function"),
    pytest.param(
        HybridApplicationPolicy, IndexedHybridApplicationPolicy, id="hybrid-application"
    ),
    pytest.param(SpesPolicy, IndexedSpesPolicy, id="spes"),
]


@pytest.fixture(scope="module", params=SEEDS)
def split(request):
    trace = AzureTraceGenerator(GeneratorProfile.small(seed=request.param)).generate()
    return split_trace(trace, training_days=2.0)


@pytest.mark.parametrize("dict_factory, indexed_factory", PAIRS)
def test_engines_and_implementations_are_fingerprint_identical(
    split, dict_factory, indexed_factory
):
    fingerprints = {}
    for label, factory, engine in (
        ("dict/vectorized", dict_factory, "vectorized"),
        ("dict/reference", dict_factory, "reference"),
        ("indexed/vectorized", indexed_factory, "vectorized"),
        ("indexed/reference", indexed_factory, "reference"),
    ):
        result = simulate_policy(
            factory(),
            split.simulation,
            split.training,
            warmup_minutes=360,
            engine=engine,
        )
        fingerprints[label] = result.deterministic_fingerprint()
    assert len(set(fingerprints.values())) == 1, fingerprints


@pytest.mark.parametrize("dict_factory, indexed_factory", PAIRS)
def test_twins_share_the_policy_name(split, dict_factory, indexed_factory):
    # Fingerprints hash the policy name first, so twin pairs must agree on it
    # for the equality above to be meaningful rather than vacuous.
    assert dict_factory().name == indexed_factory().name
