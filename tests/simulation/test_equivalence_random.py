"""Randomized equivalence: engines × policy implementations.

Seeded randomized workloads (see :mod:`harness`) are driven through every
combination of

* engine:   ``vectorized`` vs ``reference`` (the executable specification)
  vs ``event`` (sub-minute expansion layered on the vectorized loop);
* policy:   index-native :class:`VectorizedPolicy` ports vs their unchanged
  dict-based twins (adapted transparently by the engine).

All runs of a (workload, policy pair) cell must produce identical
``deterministic_fingerprint()``\\ s — the strongest equality the result type
offers (per-function stats, the whole memory series, WMT, EMCR, cluster
stats).  A base seed runs on every invocation; the extended seed matrix is
marked ``slow`` so CI covers it in full while ``-m "not slow"`` keeps the
local loop fast.
"""

import pytest

from harness import (
    PLACEMENTS,
    POLICY_PAIRS,
    assert_cross_engine_equivalence,
    random_cluster,
    random_split,
)
from repro.baselines import FixedKeepAlivePolicy, IndexedFixedKeepAlivePolicy
from repro.simulation import EventConfig

FAST_SEEDS = (11,)
SLOW_SEEDS = (23, 47, 101)

SEEDS = [pytest.param(seed, id=f"seed{seed}") for seed in FAST_SEEDS] + [
    pytest.param(seed, id=f"seed{seed}", marks=pytest.mark.slow) for seed in SLOW_SEEDS
]


@pytest.fixture(scope="module", params=SEEDS)
def workload(request):
    """One randomized workload per seed, shared by every pair's cells."""
    seed = request.param
    return seed, random_split(seed)


@pytest.mark.parametrize("dict_factory, indexed_factory", POLICY_PAIRS)
def test_engines_and_implementations_are_fingerprint_identical(
    workload, dict_factory, indexed_factory
):
    _, split = workload
    assert_cross_engine_equivalence(dict_factory, indexed_factory, split)


@pytest.mark.parametrize("dict_factory, indexed_factory", POLICY_PAIRS)
def test_equivalence_holds_under_capacity_pressure(
    workload, dict_factory, indexed_factory
):
    """The cluster arbiter must not distinguish twin implementations either."""
    seed, split = workload
    cluster = random_cluster(seed, split)
    assert_cross_engine_equivalence(
        dict_factory, indexed_factory, split, cluster=cluster
    )


@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("dict_factory, indexed_factory", POLICY_PAIRS)
def test_equivalence_holds_for_every_placement(
    workload, placement, dict_factory, indexed_factory
):
    """Placement strategies × policy pairs: fingerprints stay engine-independent.

    Migration is enabled (seeded threshold), so the matrix also proves that
    sustained-pressure re-placement — the most stateful part of the placement
    subsystem — is a pure function of minute-granular state: the vectorized
    and event engines, driving dict and indexed twins, must land on one
    fingerprint per (workload, placement, pair) cell.
    """
    seed, split = workload
    cluster = random_cluster(seed, split, placement=placement, migration=True)
    assert_cross_engine_equivalence(
        dict_factory, indexed_factory, split, cluster=cluster
    )


def test_jitter_seed_never_changes_minute_aggregates(workload):
    """Event arrival jitter affects latencies only — never the fingerprint."""
    _, split = workload
    baseline = assert_cross_engine_equivalence(
        lambda: FixedKeepAlivePolicy(10),
        lambda: IndexedFixedKeepAlivePolicy(10),
        split,
        events=EventConfig(seed=1),
    )
    rejittered = assert_cross_engine_equivalence(
        lambda: FixedKeepAlivePolicy(10),
        lambda: IndexedFixedKeepAlivePolicy(10),
        split,
        events=EventConfig(seed=2, cold_start_scale=3.0),
    )
    assert baseline == rejittered


@pytest.mark.parametrize("dict_factory, indexed_factory", POLICY_PAIRS)
def test_twins_share_the_policy_name(dict_factory, indexed_factory):
    # Fingerprints hash the policy name first, so twin pairs must agree on it
    # for the equality above to be meaningful rather than vacuous.
    assert dict_factory().name == indexed_factory().name
