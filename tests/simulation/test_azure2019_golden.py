"""Golden-fingerprint pin of the committed Azure 2019 mini-fixture.

``tests/data/azure2019-fixture/`` holds CSVs generated once by
:func:`repro.traces.write_azure2019_fixture` (12 functions, 2 days, seed 77)
and committed, so this test is independent of the generator's current
behaviour: it pins the whole chain *files → streaming ingestion → CSR →
engines* against bit-level drift.  Three layers of identity, outermost
first, so a failure names the layer that moved:

1. the dataset fingerprint (content hashes of the committed CSVs themselves);
2. the ingested trace's content fingerprint (selection, CSR assembly,
   duration joins);
3. one simulation fingerprint across every (implementation × engine)
   combination, extending the equivalence harness to a real-schema trace
   source.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from harness import ALL_ENGINES, collect_fingerprints
from repro.baselines import FixedKeepAlivePolicy, IndexedFixedKeepAlivePolicy
from repro.simulation import EventConfig
from repro.traces import (
    Azure2019Config,
    Azure2019Dataset,
    SparseTrace,
    split_trace,
)

FIXTURE_ROOT = Path(__file__).resolve().parent.parent / "data" / "azure2019-fixture"

# Dataset and trace fingerprints moved when the memory join landed: the
# dataset digest now covers the app_memory_percentiles files and the trace
# digest includes each function's joined footprint.  The simulation
# fingerprint is pinned unchanged across that release — unit-mode accounting
# ignores footprints, so engine output must stay byte-identical.
DATASET_FINGERPRINT = (
    "68c4e681945f8e2dd745473a204ba096cc37c7a6576b4177dd668df397123703"
)
TRACE_FINGERPRINT = (
    "bb0d9bbf88bab113157d84d63d32e08eb9f0d661345233f623166247996fad52"
)
SIMULATION_FINGERPRINT = (
    "01f99cf4959b9e4cfad53362d49fb782b840a0ab78bf8e26fdd622f42f87b8d9"
)

CONFIG = Azure2019Config(days=(1, 2))


@pytest.fixture(scope="module")
def dataset() -> Azure2019Dataset:
    return Azure2019Dataset(FIXTURE_ROOT, cache_dir=None)


@pytest.fixture(scope="module")
def trace(dataset) -> SparseTrace:
    return dataset.load(CONFIG)


class TestCommittedFixtureGolden:
    def test_committed_files_are_unchanged(self, dataset):
        assert dataset.available_days() == [1, 2]
        assert dataset.fingerprint(CONFIG) == DATASET_FINGERPRINT

    def test_ingested_trace_matches_the_golden_fingerprint(self, trace):
        assert isinstance(trace, SparseTrace)
        assert len(trace) == 12
        assert trace.total_invocations() == 3315
        assert trace.fingerprint() == TRACE_FINGERPRINT

    def test_durations_join_for_most_of_the_population(self, trace):
        measured = [r for r in trace.records() if r.duration is not None]
        unmeasured = [r for r in trace.records() if r.duration is None]
        # The fixture deliberately leaves a fraction of functions without a
        # duration row (the archetype-fallback path).
        assert measured and unmeasured

    def test_every_engine_produces_the_pinned_fingerprint(self, trace):
        split = split_trace(trace, training_days=1.0)
        fingerprints = collect_fingerprints(
            {
                "dict": lambda: FixedKeepAlivePolicy(10),
                "indexed": lambda: IndexedFixedKeepAlivePolicy(10),
            },
            split,
            engines=ALL_ENGINES,
            events=EventConfig(seed=77),
            warmup_minutes=60,
        )
        assert set(fingerprints.values()) == {SIMULATION_FINGERPRINT}, fingerprints
