"""Unit tests of :class:`repro.simulation.spec.RunSpec`.

The spec is the single home of run-shape defaults, cross-field validation
and canonical serialization; these tests pin each of those contracts
directly (the cross-*layer* guarantees are covered by
``tests/experiments/test_validation_parity.py`` and the golden cache-key
pins).
"""

from __future__ import annotations

import argparse
import dataclasses

import pytest

from repro.simulation import ClusterModel, EventConfig
from repro.simulation.spec import (
    DEFAULT_WARMUP_MINUTES,
    ENGINE_IMPLEMENTATIONS,
    ENGINE_VERSION,
    EVENT_ENGINES,
    MEMORY_MODES,
    RunSpec,
    canonical_value,
    content_digest,
)


class TestConstruction:
    def test_defaults(self):
        spec = RunSpec()
        assert spec.engine == "vectorized"
        assert spec.streaming is False
        assert spec.warmup_minutes == DEFAULT_WARMUP_MINUTES
        assert spec.shards == 0
        assert spec.shard_placement == "hash"
        assert spec.memory_mode == "unit"
        assert spec.cluster is None
        assert spec.events is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunSpec().engine = "event"

    def test_build_drops_none_overrides(self):
        # None means "use the field default" — that is the whole point of
        # the entry points' keyword shims defaulting their knobs to None.
        assert RunSpec.build(engine=None, shards=None) == RunSpec()
        assert RunSpec.build(engine="event").engine == "event"

    def test_build_keeps_falsy_non_none_overrides(self):
        assert RunSpec.build(warmup_minutes=0).warmup_minutes == 0
        assert RunSpec.build(streaming=False).streaming is False

    def test_from_cli_args(self):
        args = argparse.Namespace(
            engine="event",
            streaming=True,
            shards=4,
            shard_placement="least-loaded",
            memory_mode="mb",
        )
        spec = RunSpec.from_cli_args(args)
        assert spec.engine == "event"
        assert spec.streaming is True
        assert spec.shards == 4
        assert spec.shard_placement == "least-loaded"
        assert spec.memory_mode == "mb"
        # Absent flags (e.g. a namespace without warmup) fall back to defaults.
        assert spec.warmup_minutes == DEFAULT_WARMUP_MINUTES

    def test_override_returns_new_validated_spec(self):
        base = RunSpec()
        changed = base.override(engine="event")
        assert changed.engine == "event"
        assert base.engine == "vectorized"

    def test_override_revalidates(self):
        spec = RunSpec(memory_mode="mb")
        with pytest.raises(ValueError, match="mask-based"):
            spec.override(engine="reference")


class TestValidation:
    def test_negative_warmup(self):
        with pytest.raises(ValueError, match="warmup_minutes must be non-negative"):
            RunSpec(warmup_minutes=-1)

    def test_negative_shards(self):
        with pytest.raises(ValueError, match="shards must be non-negative"):
            RunSpec(shards=-2)

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(engine="quantum")

    def test_unknown_memory_mode(self):
        with pytest.raises(ValueError, match="unknown memory_mode"):
            RunSpec(memory_mode="gb")

    def test_unknown_shard_placement(self):
        with pytest.raises(KeyError):
            RunSpec(shard_placement="no-such-strategy")

    def test_mb_requires_mask_engine(self):
        with pytest.raises(ValueError, match="mask-based"):
            RunSpec(engine="reference", memory_mode="mb")
        for engine in ENGINE_IMPLEMENTATIONS:
            if engine != "reference":
                RunSpec(engine=engine, memory_mode="mb")

    def test_cluster_requires_mask_engine(self):
        cluster = ClusterModel(memory_capacity=8, n_nodes=2)
        with pytest.raises(ValueError, match="cluster mode requires a mask-based"):
            RunSpec(engine="reference", cluster=cluster)

    def test_mb_cluster_requires_mb_mode(self):
        cluster = ClusterModel(memory_capacity=4096, n_nodes=2, capacity_unit="mb")
        with pytest.raises(ValueError, match="MB-denominated"):
            RunSpec(cluster=cluster)
        RunSpec(cluster=cluster, memory_mode="mb")

    def test_events_require_event_engine(self):
        with pytest.raises(ValueError, match="requires an event engine"):
            RunSpec(events=EventConfig(seed=1))
        for engine in EVENT_ENGINES:
            RunSpec(engine=engine, events=EventConfig(seed=1))

    def test_validate_returns_self(self):
        spec = RunSpec()
        assert spec.validate() is spec


class TestCanonical:
    def test_canonical_is_plain_json_data(self):
        import json

        doc = RunSpec().canonical()
        assert doc["engine"] == "vectorized"
        assert doc["cluster"] is None
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_canonical_embeds_nested_configs(self):
        spec = RunSpec(
            engine="event",
            events=EventConfig(seed=7),
            cluster=ClusterModel(memory_capacity=8, n_nodes=2),
        )
        doc = spec.canonical()
        assert doc["events"]["seed"] == 7
        assert doc["cluster"]["memory_capacity"] == 8

    def test_spec_digest_is_stable_and_distinguishing(self):
        assert RunSpec().spec_digest() == RunSpec().spec_digest()
        assert RunSpec().spec_digest() != RunSpec(engine="event").spec_digest()
        assert RunSpec().spec_digest() == content_digest(RunSpec())

    def test_equal_specs_from_different_constructors(self):
        assert RunSpec.build(engine="event") == RunSpec(engine="event")
        assert (
            RunSpec.build(engine="event").spec_digest()
            == RunSpec(engine="event").spec_digest()
        )


class TestCacheKeyParts:
    """The legacy part order is a compatibility contract — pin it exactly."""

    def test_default_spec_part_order(self):
        parts = RunSpec().cache_key_parts("trace-fp", "policy", 42)
        assert parts == [
            ENGINE_VERSION,
            "vectorized",
            False,
            0,
            "hash",
            "trace-fp",
            DEFAULT_WARMUP_MINUTES,
            None,
            None,
            "policy",
            42,
        ]

    def test_memory_mode_appended_only_off_default(self):
        unit = RunSpec().cache_key_parts("fp", "p", 0)
        assert ("memory_mode", "unit") not in unit
        mb = RunSpec(memory_mode="mb").cache_key_parts("fp", "p", 0)
        assert mb[-1] == ("memory_mode", "mb")
        assert mb[:-1] == unit

    def test_cache_key_is_digest_of_parts(self):
        spec = RunSpec(engine="event", events=EventConfig(seed=3))
        assert spec.cache_key("fp", "p", 1) == content_digest(
            *spec.cache_key_parts("fp", "p", 1)
        )


def test_constants_reexported_from_engine_module():
    # Back-compat: the catalog constants moved to spec.py but their historic
    # import sites must keep working.
    from repro.simulation import engine as engine_module

    assert engine_module.ENGINE_IMPLEMENTATIONS == ENGINE_IMPLEMENTATIONS
    assert engine_module.MEMORY_MODES == MEMORY_MODES
    assert engine_module.EVENT_ENGINES == EVENT_ENGINES
    assert engine_module.ENGINE_VERSION == ENGINE_VERSION
    assert engine_module.DEFAULT_WARMUP_MINUTES == DEFAULT_WARMUP_MINUTES

    import repro.simulation as simulation

    assert simulation.RunSpec is RunSpec
    assert simulation.canonical_value is canonical_value
    assert simulation.content_digest is content_digest
