"""Tests for the capacity-constrained cluster mode."""

import numpy as np
import pytest

from repro.baselines import FixedKeepAlivePolicy, IndexedFixedKeepAlivePolicy
from repro.simulation import (
    AlwaysWarmPolicy,
    ClusterModel,
    Simulator,
    simulate_policy,
)
from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace
from repro.traces import FunctionRecord, Trace
from repro.traces.schema import TraceMetadata


def small_trace(series_by_id, name="t"):
    records = [FunctionRecord(fid, f"app-{fid}", f"owner-{fid}") for fid in series_by_id]
    duration = len(next(iter(series_by_id.values())))
    return Trace(
        records,
        {fid: np.asarray(series) for fid, series in series_by_id.items()},
        TraceMetadata(name=name, duration_minutes=duration),
    )


class TestClusterModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterModel(memory_capacity=0)
        with pytest.raises(ValueError):
            ClusterModel(memory_capacity=4, n_nodes=0)
        with pytest.raises(ValueError):
            ClusterModel(memory_capacity=2, n_nodes=4)

    def test_node_capacity_is_ceiling_division(self):
        assert ClusterModel(memory_capacity=10, n_nodes=4).node_capacity == 3
        assert ClusterModel(memory_capacity=8, n_nodes=4).node_capacity == 2

    def test_sharding_is_deterministic_and_in_range(self):
        model = ClusterModel(memory_capacity=16, n_nodes=4)
        nodes = [model.node_of(f"func-{i:05d}") for i in range(50)]
        assert nodes == [model.node_of(f"func-{i:05d}") for i in range(50)]
        assert all(0 <= node < 4 for node in nodes)
        assert len(set(nodes)) > 1  # the hash actually spreads functions

    def test_reference_engine_rejects_cluster_mode(self):
        trace = small_trace({"f": [1, 0, 1]})
        with pytest.raises(ValueError, match="mask-based"):
            Simulator(trace, engine="reference", cluster=ClusterModel(memory_capacity=4))

    def test_mask_based_engines_accept_cluster_mode(self):
        trace = small_trace({"f": [1, 0, 1]})
        for engine in ("vectorized", "event"):
            Simulator(trace, engine=engine, cluster=ClusterModel(memory_capacity=4))


class TestArbiter:
    def test_respects_the_cap_and_keeps_most_recently_invoked(self):
        model = ClusterModel(memory_capacity=2, n_nodes=1)
        arbiter = model.arbiter(("a", "b", "c"))
        arbiter.observe_invocations(0, np.array([0]))       # a at minute 0
        arbiter.observe_invocations(1, np.array([1]))       # b at minute 1
        arbiter.observe_invocations(2, np.array([2]))       # c at minute 2
        proposed = np.array([True, True, True])
        admitted, evicted = arbiter.admit(proposed)
        # b and c are the most recent; a (least recently invoked) is dropped.
        np.testing.assert_array_equal(admitted, [False, True, True])
        # Nothing was admitted before, so the drop is a denial, not an eviction.
        assert evicted == 0

    def test_forced_removal_counts_as_eviction(self):
        model = ClusterModel(memory_capacity=1, n_nodes=1)
        arbiter = model.arbiter(("a", "b"))
        arbiter.observe_invocations(0, np.array([0]))
        admitted, evicted = arbiter.admit(np.array([True, False]))
        assert evicted == 0 and admitted[0]
        arbiter.observe_invocations(1, np.array([1]))
        # Policy wants both; only the fresher b fits; a was resident -> evicted.
        admitted, evicted = arbiter.admit(np.array([True, True]))
        np.testing.assert_array_equal(admitted, [False, True])
        assert evicted == 1
        assert arbiter.evictions == 1

    def test_tie_break_prefers_the_lower_function_index(self):
        model = ClusterModel(memory_capacity=1, n_nodes=1)
        arbiter = model.arbiter(("a", "b"))
        # Both invoked at the same minute: the lower index survives.
        arbiter.observe_invocations(3, np.array([0, 1]))
        admitted, _ = arbiter.admit(np.array([True, True]))
        np.testing.assert_array_equal(admitted, [True, False])

    def test_global_capacity_holds_when_not_divisible_by_nodes(self):
        # ceil(10 / 3) = 4 per node: three full nodes would sum to 12.  The
        # cluster-wide bound must still cap the total at 10.
        model = ClusterModel(memory_capacity=10, n_nodes=3)
        ids = tuple(f"f{i}" for i in range(30))
        arbiter = model.arbiter(ids)
        arbiter.observe_invocations(0, np.arange(30))
        admitted, _ = arbiter.admit(np.ones(30, dtype=bool))
        assert int(admitted.sum()) <= model.memory_capacity
        per_node = arbiter.node_usage(admitted)
        assert (per_node <= model.node_capacity).all()

    def test_caller_mutations_do_not_pollute_admitted_state(self):
        # The engine marks on-demand loads on the returned mask; that must
        # not turn later admission *denials* into counted *evictions*.
        model = ClusterModel(memory_capacity=1, n_nodes=1)
        arbiter = model.arbiter(("a", "b"))
        arbiter.observe_invocations(0, np.array([0]))
        admitted, _ = arbiter.admit(np.array([True, False]))  # a admitted
        admitted[1] = True  # engine-style on-demand load of b
        arbiter.observe_invocations(1, np.array([0]))  # a stays most recent
        _, evicted = arbiter.admit(np.array([True, True]))  # b denied
        assert evicted == 0
        assert arbiter.evictions == 0


class TestCapacityConstrainedRuns:
    @pytest.fixture(scope="class")
    def split(self):
        trace = AzureTraceGenerator(GeneratorProfile.small(seed=3)).generate()
        return split_trace(trace, training_days=2.0)

    def test_huge_capacity_matches_the_uncapped_run(self, split):
        uncapped = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), split.simulation, split.training,
            warmup_minutes=0,
        )
        capped = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), split.simulation, split.training,
            warmup_minutes=0, cluster=ClusterModel(memory_capacity=100_000, n_nodes=4),
        )
        assert capped.cluster is not None
        assert capped.cluster.evictions == 0
        assert capped.cluster.capacity_cold_starts == 0
        assert {
            fid: (s.invocations, s.cold_starts, s.wasted_memory_time)
            for fid, s in capped.per_function.items()
        } == {
            fid: (s.invocations, s.cold_starts, s.wasted_memory_time)
            for fid, s in uncapped.per_function.items()
        }
        np.testing.assert_array_equal(capped.memory_usage, uncapped.memory_usage)

    def test_squeeze_produces_evictions_and_capacity_cold_starts(self, split):
        uncapped = simulate_policy(
            FixedKeepAlivePolicy(10), split.simulation, split.training,
            warmup_minutes=0,
        )
        squeeze = ClusterModel(
            memory_capacity=max(2, uncapped.peak_memory_usage // 3), n_nodes=2
        )
        capped = simulate_policy(
            FixedKeepAlivePolicy(10), split.simulation, split.training,
            warmup_minutes=0, cluster=squeeze,
        )
        stats = capped.cluster
        assert stats.evictions > 0
        assert stats.capacity_cold_starts > 0
        assert capped.total_cold_starts >= uncapped.total_cold_starts
        assert stats.node_usage.shape == (
            split.simulation.duration_minutes,
            squeeze.n_nodes,
        )
        # The *resident* set entering each minute respects the per-node cap;
        # only on-demand loads may exceed it, so per-node usage is bounded by
        # node_capacity plus that minute's invoked functions.
        summary = capped.summary()
        assert summary["evictions"] == float(stats.evictions)
        assert summary["capacity_cold_starts"] == float(stats.capacity_cold_starts)
        assert "mean_node_utilization" in summary

    def test_fingerprint_distinguishes_capacity_runs(self, split):
        capped = simulate_policy(
            AlwaysWarmPolicy(), split.simulation, split.training,
            warmup_minutes=0, cluster=ClusterModel(memory_capacity=5, n_nodes=1),
        )
        uncapped = simulate_policy(
            AlwaysWarmPolicy(), split.simulation, split.training, warmup_minutes=0,
        )
        assert (
            capped.deterministic_fingerprint() != uncapped.deterministic_fingerprint()
        )

    def test_cluster_runs_are_deterministic(self, split):
        model = ClusterModel(memory_capacity=8, n_nodes=2)
        first = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), split.simulation, split.training,
            warmup_minutes=120, cluster=model,
        )
        second = simulate_policy(
            IndexedFixedKeepAlivePolicy(10), split.simulation, split.training,
            warmup_minutes=120, cluster=model,
        )
        assert (
            first.deterministic_fingerprint() == second.deterministic_fingerprint()
        )
        assert first.cluster.evictions == second.cluster.evictions
