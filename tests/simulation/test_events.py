"""Tests for the sub-minute event engine (config, tracker, engine wiring)."""

import numpy as np
import pytest

from repro.baselines import FixedKeepAlivePolicy, IndexedFixedKeepAlivePolicy
from repro.simulation import (
    AlwaysWarmPolicy,
    ClusterModel,
    CpuConfig,
    EventConfig,
    NoKeepAlivePolicy,
    Simulator,
    simulate_policy,
)
from repro.simulation.events import SECONDS_PER_MINUTE, expand_minute_offsets
from repro.traces import (
    DEFAULT_DURATION_PROFILE,
    DurationProfile,
    FunctionRecord,
    Trace,
    TriggerType,
    duration_profile_for,
)
from repro.traces.schema import TraceMetadata


# --------------------------------------------------------------------- #
# Duration model
# --------------------------------------------------------------------- #
class TestDurationProfile:
    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            DurationProfile(cold_start_ms=-1.0)
        with pytest.raises(ValueError):
            DurationProfile(execution_ms=-1.0)

    def test_scaled(self):
        profile = DurationProfile(cold_start_ms=100.0, execution_ms=50.0)
        scaled = profile.scaled(cold_start=2.0, execution=0.5)
        assert scaled.cold_start_ms == 200.0
        assert scaled.execution_ms == 25.0
        with pytest.raises(ValueError):
            profile.scaled(cold_start=-1.0)

    def test_derivation_is_deterministic_per_function(self):
        record = FunctionRecord("f-1", "app", "owner", TriggerType.HTTP)
        assert duration_profile_for(record) == duration_profile_for(record)

    def test_derivation_spreads_across_functions(self):
        profiles = {
            duration_profile_for(
                FunctionRecord(f"f-{i}", "app", "owner", TriggerType.HTTP)
            ).cold_start_ms
            for i in range(20)
        }
        assert len(profiles) > 10  # a distribution, not a spike

    def test_archetype_beats_trigger_fallback(self):
        bursty = FunctionRecord(
            "f-x", "app", "owner", TriggerType.HTTP, archetype="bursty"
        )
        plain = FunctionRecord("f-x", "app", "owner", TriggerType.HTTP)
        # Same function id -> same spread factor, so the base must differ.
        assert duration_profile_for(bursty) != duration_profile_for(plain)


class TestEventConfig:
    def test_negative_scales_rejected(self):
        with pytest.raises(ValueError):
            EventConfig(cold_start_scale=-0.1)

    def test_uniform_profiles_when_derivation_disabled(self):
        config = EventConfig(derive_profiles=False)
        record = FunctionRecord("f-1", "app", "owner", TriggerType.HTTP)
        assert config.profile_for(record) == DEFAULT_DURATION_PROFILE

    def test_scales_apply_on_top_of_profiles(self):
        config = EventConfig(derive_profiles=False, cold_start_scale=2.0)
        record = FunctionRecord("f-1", "app", "owner", TriggerType.HTTP)
        profile = config.profile_for(record)
        assert profile.cold_start_ms == 2 * DEFAULT_DURATION_PROFILE.cold_start_ms


def test_expand_minute_offsets_sorted_within_minute():
    rng = np.random.default_rng(9)
    offsets = expand_minute_offsets(rng, 50)
    assert offsets.size == 50
    assert (np.diff(offsets) >= 0).all()
    assert (offsets >= 0).all() and (offsets < SECONDS_PER_MINUTE).all()
    assert expand_minute_offsets(rng, 0).size == 0


# --------------------------------------------------------------------- #
# Engine wiring
# --------------------------------------------------------------------- #
def _dense_trace(count_per_minute: int = 20, duration: int = 30) -> Trace:
    series = np.full(duration, count_per_minute, dtype=np.int64)
    records = [FunctionRecord("dense", "app-1", "owner-1", TriggerType.HTTP)]
    metadata = TraceMetadata(name="dense", duration_minutes=duration)
    return Trace(records, {"dense": series}, metadata)


class TestEventEngine:
    def test_event_config_requires_event_engine(self, small_split):
        with pytest.raises(ValueError, match="requires an event engine"):
            Simulator(small_split.simulation, events=EventConfig())

    def test_reference_engine_rejects_cluster(self, small_split):
        with pytest.raises(ValueError, match="mask-based"):
            Simulator(
                small_split.simulation,
                engine="reference",
                cluster=ClusterModel(memory_capacity=10),
            )

    def test_minute_engines_carry_no_latency_block(self, small_split):
        result = simulate_policy(
            FixedKeepAlivePolicy(10), small_split.simulation, warmup_minutes=0
        )
        assert result.latency is None

    def test_event_totals_match_the_trace(self, small_split):
        result = simulate_policy(
            FixedKeepAlivePolicy(10),
            small_split.simulation,
            warmup_minutes=0,
            engine="event",
        )
        latency = result.latency
        assert latency.total_events == small_split.simulation.total_invocations()
        assert (
            latency.warm_events + latency.cold_start_events + latency.delayed_events
            == latency.total_events
        )
        assert latency.cold_start_events == result.total_cold_starts

    def test_same_config_reproduces_latencies_exactly(self, small_split):
        runs = [
            simulate_policy(
                IndexedFixedKeepAlivePolicy(10),
                small_split.simulation,
                warmup_minutes=0,
                engine="event",
                events=EventConfig(seed=13),
            ).latency
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].cold_wait_ms, runs[1].cold_wait_ms)
        assert runs[0].delayed_events == runs[1].delayed_events

    def test_different_jitter_seeds_change_latencies_not_counts(self, small_split):
        results = [
            simulate_policy(
                IndexedFixedKeepAlivePolicy(10),
                small_split.simulation,
                warmup_minutes=0,
                engine="event",
                events=EventConfig(seed=seed, cold_start_scale=40.0),
            )
            for seed in (1, 2)
        ]
        assert (
            results[0].deterministic_fingerprint()
            == results[1].deterministic_fingerprint()
        )
        assert (
            results[0].latency.cold_start_events
            == results[1].latency.cold_start_events
        )

    def test_delayed_events_queue_behind_provisioning(self):
        # One function, 20 invocations per minute, never kept alive: every
        # minute is an initiation, and with a 30-second provisioning latency
        # most of the minute's arrivals land inside the provisioning window.
        trace = _dense_trace()
        result = simulate_policy(
            NoKeepAlivePolicy(),
            trace,
            warmup_minutes=0,
            engine="event",
            events=EventConfig(
                seed=3,
                derive_profiles=False,
                default_profile=DurationProfile(cold_start_ms=30_000.0),
            ),
        )
        latency = result.latency
        assert latency.cold_start_events == trace.duration_minutes
        assert latency.delayed_events > 0
        # Queued waits are residuals: strictly below the full provisioning
        # latency, and the initiation wait is the distribution's maximum.
        assert latency.max_ms == pytest.approx(30_000.0)
        assert latency.p50_ms <= 30_000.0
        delayed_waits = np.sort(latency.cold_wait_ms)[: latency.delayed_events]
        assert (delayed_waits < 30_000.0).all()
        assert (delayed_waits > 0.0).all()

    def test_always_warm_policy_pays_only_the_cold_platform_start(self, small_split):
        # Always-warm declares everything resident from its first decision,
        # so on a cold platform only the functions invoked during minute 0
        # ever cold-start.
        result = simulate_policy(
            AlwaysWarmPolicy(),
            small_split.simulation,
            warmup_minutes=0,
            engine="event",
        )
        latency = result.latency
        minute_zero = set(small_split.simulation.invocations_at(0))
        assert latency.cold_start_events == len(minute_zero)
        assert set(latency.per_function_wait_ms) == minute_zero

    def test_per_function_waits_partition_the_global_distribution(self, small_split):
        latency = simulate_policy(
            FixedKeepAlivePolicy(10),
            small_split.simulation,
            warmup_minutes=0,
            engine="event",
        ).latency
        pooled = np.concatenate(list(latency.per_function_wait_ms.values()))
        assert pooled.size == latency.cold_wait_ms.size
        np.testing.assert_allclose(
            np.sort(pooled), np.sort(latency.cold_wait_ms)
        )

    def test_execution_time_accumulates(self, small_split):
        latency = simulate_policy(
            FixedKeepAlivePolicy(10),
            small_split.simulation,
            warmup_minutes=0,
            engine="event",
            events=EventConfig(derive_profiles=False),
        ).latency
        expected = latency.total_events * DEFAULT_DURATION_PROFILE.execution_ms
        assert latency.total_execution_ms == pytest.approx(expected)


class TestEventEngineWithCluster:
    def test_capacity_cold_events_match_cluster_stats(self, small_split):
        cluster = ClusterModel(memory_capacity=15, n_nodes=3)
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(30),
            small_split.simulation,
            small_split.training,
            warmup_minutes=180,
            engine="event",
            cluster=cluster,
        )
        assert result.cluster is not None
        assert result.cluster.capacity_cold_starts > 0  # the cap bites
        assert (
            result.latency.capacity_cold_events
            == result.cluster.capacity_cold_starts
        )
        assert result.latency.capacity_cold_events <= result.latency.cold_start_events

    def test_uncapped_runs_attribute_nothing_to_capacity(self, small_split):
        result = simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            small_split.simulation,
            warmup_minutes=0,
            engine="event",
        )
        assert result.latency.capacity_cold_events == 0


# --------------------------------------------------------------------- #
# Intra-node CPU scheduling stage
# --------------------------------------------------------------------- #
class TestCpuScheduling:
    def _run(self, split, events, **kwargs):
        return simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            split.simulation,
            warmup_minutes=0,
            engine="event",
            events=events,
            **kwargs,
        )

    def test_without_cpu_config_layer_is_inert(self, small_split):
        latency = self._run(small_split, EventConfig(seed=5)).latency
        assert latency.cpu_scheduled_events == 0
        assert latency.cpu_delayed_events == 0
        assert latency.cpu_wait_ms.size == 0
        assert latency.slowdown.size == 0
        assert latency.slo_ms is None
        assert latency.slo_checked_events == 0

    def test_cpu_stage_is_a_pure_observer(self, small_split):
        # Finite cores change latency accounting, never provisioning: the
        # fingerprinted minute aggregates match the CPU-free run exactly.
        plain = self._run(small_split, EventConfig(seed=5))
        contended = self._run(
            small_split,
            EventConfig(seed=5, cpu=CpuConfig(cores_per_node=1, scheduler="fifo")),
        )
        assert (
            plain.deterministic_fingerprint()
            == contended.deterministic_fingerprint()
        )
        # The cold jitter stream is drawn before the CPU stage's warm draws,
        # so provisioning waits are bit-identical too.
        np.testing.assert_array_equal(
            plain.latency.cold_wait_ms, contended.latency.cold_wait_ms
        )

    def test_cpu_run_schedules_every_event(self, small_split):
        latency = self._run(
            small_split,
            EventConfig(
                seed=5,
                execution_scale=20.0,
                cpu=CpuConfig(cores_per_node=1, scheduler="fifo"),
            ),
        ).latency
        assert latency.cpu_scheduled_events == latency.total_events
        # Wait samples are kept for delayed events only (mirroring
        # cold_wait_ms); slowdown is recorded for every scheduled event.
        assert latency.cpu_wait_ms.size == latency.cpu_delayed_events
        assert latency.slowdown.size == latency.total_events
        assert (latency.cpu_wait_ms > 0.0).all()
        assert (latency.slowdown >= 1.0).all()
        # Stretched executions on a single core must produce real contention.
        assert latency.cpu_delayed_events > 0
        assert latency.slowdown_p99 > 1.0
        assert latency.cpu_wait_p99_ms > 0.0

    @pytest.mark.parametrize("scheduler", ["fifo", "rr", "srtf", "las"])
    def test_every_discipline_runs_end_to_end(self, small_split, scheduler):
        latency = self._run(
            small_split,
            EventConfig(seed=5, cpu=CpuConfig(cores_per_node=2, scheduler=scheduler)),
        ).latency
        assert latency.cpu_scheduled_events == latency.total_events
        assert np.isfinite(latency.cpu_wait_ms).all()
        assert np.isfinite(latency.slowdown).all()

    def test_slo_without_cpu_uses_no_rng(self, small_split):
        # SLO accounting on an infinite-core run is draw-free arithmetic on
        # the existing waits, so it cannot perturb the jitter stream.
        plain = self._run(small_split, EventConfig(seed=5))
        checked = self._run(small_split, EventConfig(seed=5, slo_ms=150.0))
        assert (
            plain.deterministic_fingerprint()
            == checked.deterministic_fingerprint()
        )
        np.testing.assert_array_equal(
            plain.latency.cold_wait_ms, checked.latency.cold_wait_ms
        )
        latency = checked.latency
        assert latency.slo_ms == 150.0
        assert latency.slo_checked_events == latency.total_events
        assert 0 <= latency.slo_violations <= latency.total_events
        # The derived profile spread guarantees some executions above and
        # some below 150 ms in the small trace.
        assert 0.0 < latency.slo_violation_rate < 1.0

    def test_tight_slo_flags_everything(self, small_split):
        latency = self._run(
            small_split,
            EventConfig(
                seed=5,
                slo_ms=1e-6,
                cpu=CpuConfig(cores_per_node=2),
            ),
        ).latency
        assert latency.slo_checked_events == latency.total_events
        assert latency.slo_violations == latency.total_events
        assert latency.slo_violation_rate == pytest.approx(1.0)

    def test_cluster_splits_the_contention(self, small_split):
        # Per-node pools: the same workload on 3 single-core nodes waits less
        # for CPU than on one single-core node.
        shared = self._run(
            small_split,
            EventConfig(
                seed=5,
                execution_scale=20.0,
                cpu=CpuConfig(cores_per_node=1),
            ),
        ).latency
        spread = self._run(
            small_split,
            EventConfig(
                seed=5,
                execution_scale=20.0,
                cpu=CpuConfig(cores_per_node=1),
            ),
            cluster=ClusterModel(memory_capacity=400, n_nodes=3),
        ).latency
        assert spread.cpu_scheduled_events == shared.cpu_scheduled_events
        assert spread.cpu_wait_ms.sum() <= shared.cpu_wait_ms.sum()

    def test_event_config_validates_slo(self):
        with pytest.raises(ValueError, match="slo_ms"):
            EventConfig(slo_ms=0.0)
        with pytest.raises(ValueError, match="slo_ms"):
            EventConfig(slo_ms=-5.0)
