"""Tests for the scenario registry and its sweep/CLI integration."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentSuite
from repro.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)

TINY = dict(seed=5, n_functions=40, days=3.0, training_days=2.0)

EXPECTED = {
    "azure",
    "azure2019-fixture",
    "diurnal",
    "bursty",
    "drift",
    "flash-crowd",
    "capacity-squeeze",
    "hot-shard",
    "rotating-periods",
    "load-ramp",
    "seasonal-mix",
    "cpu-starved",
    "long-duration-mix",
}

#: Scenarios that prescribe an intra-node CPU config (event engines only).
CPU_SCENARIOS = {"cpu-starved", "long-duration-mix"}

#: The continuous-drift subset: built for streaming evaluation.
CONTINUOUS_DRIFT = {"rotating-periods", "load-ramp", "seasonal-mix"}


class TestRegistry:
    def test_builtin_catalog_is_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_unknown_scenario_raises_with_the_catalog(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("black-friday")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(SCENARIO_REGISTRY["azure"])

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            build_scenario("drift", **TINY, gravity=9.81)

    def test_custom_scenario_registration(self):
        def build(seed, n_functions, days, training_days):
            return build_scenario("azure", seed=seed, n_functions=n_functions,
                                  days=days, training_days=training_days)

        name = "test-custom-scenario"
        register_scenario(Scenario(name=name, description="azure alias", builder=build))
        try:
            workload = build_scenario(name, **TINY)
            assert workload.split.simulation.duration_minutes == 1440
        finally:
            del SCENARIO_REGISTRY[name]


class TestBuiltinScenarios:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_builds_are_deterministic(self, name):
        first = build_scenario(name, **TINY)
        second = build_scenario(name, **TINY)
        assert (
            first.split.simulation.fingerprint()
            == second.split.simulation.fingerprint()
        )
        assert (
            first.split.training.fingerprint() == second.split.training.fingerprint()
        )
        assert first.cluster == second.cluster

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_split_matches_the_requested_shape(self, name):
        workload = build_scenario(name, **TINY)
        assert workload.split.training.duration_minutes == 2 * 1440
        assert workload.split.simulation.duration_minutes == 1440
        assert len(workload.split.simulation) == TINY["n_functions"]

    def test_seeds_produce_different_workloads(self):
        a = build_scenario("bursty", **{**TINY, "seed": 1})
        b = build_scenario("bursty", **{**TINY, "seed": 2})
        assert a.split.simulation.fingerprint() != b.split.simulation.fingerprint()

    def test_capacity_squeeze_prescribes_a_cluster(self):
        workload = build_scenario("capacity-squeeze", **TINY)
        assert workload.cluster is not None
        assert workload.cluster.n_nodes == 4
        assert workload.cluster.memory_capacity >= workload.cluster.n_nodes
        # Other scenarios run the paper's uncapped setting.
        assert build_scenario("azure", **TINY).cluster is None

    def test_flash_crowd_spikes_land_in_the_simulation_window(self):
        crowd = build_scenario("flash-crowd", **TINY)
        base = build_scenario("azure", **TINY)
        # The training windows are identical; only simulation traffic differs.
        assert crowd.split.training.fingerprint() == base.split.training.fingerprint()
        assert (
            crowd.split.simulation.total_invocations()
            > base.split.simulation.total_invocations()
        )

    def test_diurnal_traffic_is_day_night_modulated(self):
        workload = build_scenario("diurnal", **TINY)
        sim = workload.split.simulation
        per_minute = np.zeros(sim.duration_minutes, dtype=np.int64)
        for fid in sim.function_ids:
            per_minute += sim.series(fid)
        halves = per_minute.reshape(2, 720).sum(axis=1)
        ratio = halves.max() / max(halves.min(), 1)
        assert ratio > 1.5  # a pronounced daily swing, not flat Poisson


class TestContinuousDriftScenarios:
    """The streaming-mode companions must actually drift, continuously."""

    def test_rotating_periods_gaps_grow_over_the_trace(self):
        workload = build_scenario("rotating-periods", **TINY)
        sim, train = workload.split.simulation, workload.split.training
        # Frequencies shrink monotonically, so the early (training) window
        # carries denser timer traffic than the late (simulation) window.
        train_rate = train.total_invocations() / train.duration_minutes
        sim_rate = sim.total_invocations() / sim.duration_minutes
        assert sim_rate < train_rate

    def test_load_ramp_grows_load_across_the_trace(self):
        workload = build_scenario("load-ramp", **TINY)
        sim, train = workload.split.simulation, workload.split.training
        train_rate = train.total_invocations() / train.duration_minutes
        sim_rate = sim.total_invocations() / sim.duration_minutes
        assert sim_rate > 1.5 * train_rate

    def test_seasonal_mix_rotates_the_hot_subset(self):
        workload = build_scenario("seasonal-mix", **{**TINY, "days": 2.0,
                                                     "training_days": 1.0})
        sim = workload.split.simulation
        half = sim.duration_minutes // 2
        # Per-function activity concentrates in one half or the other: the
        # set of functions dominating the first half must differ from the
        # second half's.
        first, second = set(), set()
        for fid in sim.function_ids:
            series = sim.series(fid)
            a, b = int(series[:half].sum()), int(series[half:].sum())
            if a + b < 10:
                continue
            (first if a > b else second).add(fid)
        assert first and second

    def test_drift_scenarios_prescribe_no_cluster(self):
        for name in sorted(CONTINUOUS_DRIFT):
            assert build_scenario(name, **TINY).cluster is None

    def test_seasonal_mix_rejects_degenerate_seasons(self):
        with pytest.raises(ValueError, match="seasons"):
            build_scenario("seasonal-mix", **TINY, seasons=1)


class TestCpuScenarios:
    """The CPU-contention pair must prescribe finite cores and an SLO."""

    def test_cpu_scenarios_prescribe_a_core_pool(self):
        for name in sorted(CPU_SCENARIOS):
            workload = build_scenario(name, **TINY)
            assert workload.events is not None
            assert workload.events.cpu is not None
            assert workload.events.cpu.cores_per_node >= 1
            assert workload.events.slo_ms is not None
            assert workload.cluster is None  # one shared pool by default

    def test_cpu_parameters_reach_the_event_config(self):
        workload = build_scenario(
            "cpu-starved", **TINY, cores=4, scheduler="las", slo_ms=250.0
        )
        assert workload.events.cpu.cores_per_node == 4
        assert workload.events.cpu.scheduler == "las"
        assert workload.events.slo_ms == 250.0
        assert workload.events.seed == TINY["seed"]  # still rebased

    def test_cpu_starved_concentrates_load(self):
        workload = build_scenario("cpu-starved", **TINY)
        sim = workload.split.simulation
        totals = sorted(
            (int(sim.series(fid).sum()) for fid in sim.function_ids),
            reverse=True,
        )
        hot = sum(totals[: len(totals) // 2])
        assert hot > 5 * max(1, sum(totals[len(totals) // 2 :]))

    def test_long_duration_mix_is_bimodal(self):
        workload = build_scenario("long-duration-mix", **TINY)
        records = workload.split.simulation.records()
        measured = [
            record.duration.execution_ms
            for record in records
            if record.duration is not None
        ]
        assert len(measured) == len(records)
        assert min(measured) < 100.0 < 1000.0 < max(measured)

    def test_invalid_cpu_parameters_fail_fast(self):
        with pytest.raises(ValueError, match="cores_per_node"):
            build_scenario("cpu-starved", **TINY, cores=0)
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_scenario("long-duration-mix", **TINY, scheduler="lottery")


class TestAzure2019Scenarios:
    """The real-trace scenario family: fixture-backed and dataset-backed."""

    def test_real_scenario_requires_the_dataset_directory(self):
        with pytest.raises(ValueError, match="azure fetch"):
            build_scenario("azure2019", **TINY)

    def test_real_scenario_builds_from_a_fixture_directory(self, tmp_path):
        from repro.traces import SparseTrace, write_azure2019_fixture

        write_azure2019_fixture(tmp_path, n_functions=20, days=3, seed=5)
        workload = build_scenario(
            "azure2019", **TINY, azure_dir=str(tmp_path)
        )
        assert isinstance(workload.split.simulation, SparseTrace)
        assert len(workload.split.simulation) == 20  # capped by the population
        assert workload.split.training.duration_minutes == 2 * 1440
        assert workload.split.simulation.duration_minutes == 1440

    def test_real_scenario_day_start_slices_the_range(self, tmp_path):
        from repro.traces import write_azure2019_fixture

        write_azure2019_fixture(tmp_path, n_functions=10, days=3, seed=5)
        shape = dict(seed=5, n_functions=10, days=1.0, training_days=0.5)
        workload = build_scenario(
            "azure2019", **shape, azure_dir=str(tmp_path), day_start=3
        )
        assert workload.split.simulation.metadata.name.startswith(
            "azure2019-d03-d03"
        )

    def test_fixture_scenario_population_enables_real_selection(self):
        shape = dict(seed=5, n_functions=8, days=1.0, training_days=0.5)
        top = build_scenario(
            "azure2019-fixture", **shape, population=24, selection="top"
        )
        subset = build_scenario("azure2019-fixture", **shape)
        assert len(top.split.simulation) == 8
        assert len(subset.split.simulation) == 8
        # Drawing the top 8 of 24 picks a different (busier) population than
        # generating exactly 8.
        assert (
            top.split.simulation.fingerprint()
            != subset.split.simulation.fingerprint()
        )

    def test_fixture_scenario_sweeps_through_the_suite(self):
        config = ExperimentConfig(
            n_functions=12, seed=5, duration_days=1.0, training_days=0.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min-indexed",),
            scenario="azure2019-fixture", engine="event",
        )
        outcome = suite.run()
        result = outcome.results[5]["fixed-10min-indexed"]
        assert result.latency is not None
        assert "lat_p50_ms" in outcome.seed_table(5).render()

    def test_real_scenario_params_flow_through_the_suite(self, tmp_path):
        from repro.traces import write_azure2019_fixture

        write_azure2019_fixture(tmp_path, n_functions=12, days=2, seed=3)
        config = ExperimentConfig(
            n_functions=10, seed=3, duration_days=2.0, training_days=1.0,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[3], policies=("fixed-10min-indexed",),
            scenario="azure2019",
            scenario_params={"azure_dir": str(tmp_path)},
        )
        outcome = suite.run()
        assert outcome.results[3]["fixed-10min-indexed"] is not None


class TestEventEngineRegression:
    """Every registered scenario must run under the sub-minute event engine.

    The shape is tiny (16 functions, one day) so the whole catalog stays
    cheap; the golden fingerprints pin the *minute-granular* outputs of an
    event run — equal to the vectorized engine's by construction — so any
    accidental semantic change to a scenario builder, the duration model's
    wiring, or the event layer's observer property fails loudly here.
    """

    SHAPE = dict(seed=9, n_functions=16, days=1.0, training_days=0.5)

    GOLDEN_FINGERPRINTS = {
        "azure": "06c3895a0cb14917d5a6055aa5765fa783533159d8bf99c513d88062d9374e04",
        "azure2019-fixture": "3f4f58ce396d12d7b5be2f950eff5e37072c85b4f0aef76926cd0ebceb0929a1",
        "bursty": "58b3a617bf0fa2ea9a1e69c1d9f44f06bd6bc7bfe99bbd0cda8edb969425f8f8",
        "capacity-squeeze": "be901884c517a240d7a23b2d042c0b8fb6d993176e29e728aed946330e79e626",
        "diurnal": "b2d5aaa21c97b0822a54f8e7863e38008e52c512d7fd573ae2169e343a5c2c8d",
        "drift": "52fbd6ed56397f97127213783b8bf6e1190096fce351c145a7ab2377406f608c",
        "flash-crowd": "cc6ecbbeca57c973a5d14b1c1aa2aa57a80d7da119ea9d70a1c01f16bd59ff8d",
        "hot-shard": "8656e8346e83b5760681c9fabb459d56801627d775d74772ef14b049186359b0",
        "load-ramp": "d9ec855613ed520bbf84f9eb995a1f801b5f0e39d3657b96c0abbeb2f41172f6",
        "rotating-periods": "91ed2dc55c0ba3d541c83619c5e997396eb6a6f12d5676583d0e222c66730fc1",
        "seasonal-mix": "35a7f603153b19043783564887b6f78c93eec31b1bd7be5ed6de31ae3fbb00ab",
        "cpu-starved": "c513548717f733107217be41f38b064f63ad3da5ef82d2d6fd45a641ac5917d6",
        "long-duration-mix": "a2c26456c0133882b70929be935a82e85b675805f101fbc5d54c121f8d660d20",
    }

    def _run(self, name, engine="event"):
        from repro.baselines import IndexedFixedKeepAlivePolicy
        from repro.simulation import simulate_policy

        workload = build_scenario(name, **self.SHAPE)
        return simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            workload.split.simulation,
            workload.split.training,
            warmup_minutes=60,
            engine=engine,
            cluster=workload.cluster,
            events=workload.events if engine == "event" else None,
        )

    def test_every_builtin_scenario_has_a_golden(self):
        assert set(self.GOLDEN_FINGERPRINTS) == EXPECTED

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_event_run_matches_the_golden_fingerprint(self, name):
        result = self._run(name)
        assert result.deterministic_fingerprint() == self.GOLDEN_FINGERPRINTS[name]
        assert result.latency is not None
        assert result.latency.cold_start_events == result.total_cold_starts

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_event_and_vectorized_runs_are_fingerprint_identical(self, name):
        assert (
            self._run(name, engine="event").deterministic_fingerprint()
            == self._run(name, engine="vectorized").deterministic_fingerprint()
        )

    def test_event_latencies_are_reproducible(self):
        first = self._run("bursty").latency
        second = self._run("bursty").latency
        np.testing.assert_array_equal(first.cold_wait_ms, second.cold_wait_ms)

    def test_workload_events_are_seeded_by_the_build(self):
        workload = build_scenario("azure", **self.SHAPE)
        assert workload.events.seed == self.SHAPE["seed"]

    def test_builder_provided_event_config_is_preserved(self):
        from repro.simulation import EventConfig

        def build(seed, n_functions, days, training_days, boot_scale):
            base = build_scenario("azure", seed=seed, n_functions=n_functions,
                                  days=days, training_days=training_days)
            # A parameter-dependent duration model set by the builder itself.
            import dataclasses
            return dataclasses.replace(
                base, events=EventConfig(cold_start_scale=boot_scale)
            )

        name = "test-builder-events"
        register_scenario(Scenario(
            name=name, description="builder-owned event config", builder=build,
            defaults={"boot_scale": 3.5},
            events=EventConfig(cold_start_scale=9.9),  # must NOT win
        ))
        try:
            workload = build_scenario(name, **self.SHAPE)
            assert workload.events.cold_start_scale == 3.5
            assert workload.events.seed == self.SHAPE["seed"]  # still rebased
        finally:
            del SCENARIO_REGISTRY[name]

    def test_scenarios_prescribe_their_duration_models(self):
        squeeze = build_scenario("capacity-squeeze", **self.SHAPE)
        diurnal = build_scenario("diurnal", **self.SHAPE)
        # Thrashing image caches vs light request/response handlers.
        assert squeeze.events.cold_start_scale > 1.0 > diurnal.events.cold_start_scale

    def test_scenario_duration_model_shifts_the_latency_distribution(self):
        scaled = self._run("capacity-squeeze").latency  # cold_start_scale 2.0
        base = build_scenario("capacity-squeeze", **self.SHAPE)
        from repro.baselines import IndexedFixedKeepAlivePolicy
        from repro.simulation import EventConfig, simulate_policy

        unscaled = simulate_policy(
            IndexedFixedKeepAlivePolicy(10),
            base.split.simulation,
            base.split.training,
            warmup_minutes=60,
            engine="event",
            cluster=base.cluster,
            events=EventConfig(seed=self.SHAPE["seed"]),
        ).latency
        assert scaled.p50_ms > unscaled.p50_ms


class TestSuiteIntegration:
    def test_capacity_squeeze_sweep_reports_evictions(self, tmp_path):
        config = ExperimentConfig(
            n_functions=30, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config,
            seeds=[5],
            policies=("spes", "fixed-10min"),
            scenario="capacity-squeeze",
        )
        outcome = suite.run()
        for result in outcome.results[5].values():
            assert result.cluster is not None
        table = outcome.seed_table(5).render()
        assert "evictions" in table and "cap_cold_starts" in table
        cluster_table = outcome.cluster_table(5)
        assert cluster_table is not None
        assert "Capacity effects" in cluster_table.render()

    def test_uncapped_sweep_has_no_cluster_table(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min",), scenario="bursty"
        )
        outcome = suite.run()
        assert outcome.cluster_table(5) is None
        assert "evictions" not in outcome.seed_table(5).render()

    def test_scenario_cells_hit_the_cache_across_sweeps(self, tmp_path):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="capacity-squeeze", cache_dir=tmp_path,
        )
        first = ExperimentSuite(**kwargs).run()
        second = ExperimentSuite(**kwargs).run()
        assert first.cache_misses > 0
        assert second.cache_misses == 0 and second.cache_hits > 0
        assert (
            first.results[5]["fixed-10min"].deterministic_fingerprint()
            == second.results[5]["fixed-10min"].deterministic_fingerprint()
        )

    def test_event_engine_sweep_reports_latency_tables(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="bursty", engine="event",
        )
        outcome = suite.run()
        result = outcome.results[5]["fixed-10min"]
        assert result.latency is not None
        table = outcome.seed_table(5).render()
        assert "lat_p50_ms" in table and "lat_p99_ms" in table
        latency_table = outcome.latency_table(5)
        assert latency_table is not None
        assert "Cold-start latency" in latency_table.render()
        merged = outcome.merged_latency("fixed-10min")
        assert merged is not None
        assert merged.total_events == result.latency.total_events

    def test_cores_override_adds_slowdown_columns(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="bursty", engine="event",
            cores=1, scheduler="srtf", slo_ms=400.0,
        )
        outcome = suite.run()
        latency = outcome.results[5]["fixed-10min"].latency
        assert latency.cpu_scheduled_events == latency.total_events
        assert latency.slo_ms == 400.0
        seed_table = outcome.seed_table(5).render()
        assert "slowdown_p50" in seed_table and "slo_viol_pct" in seed_table
        latency_table = outcome.latency_table(5).render()
        assert "slowdown_p99" in latency_table
        assert "cpu_wait_p99_ms" in latency_table

    def test_scenario_cpu_config_flows_without_overrides(self):
        # A CPU scenario brings its own CpuConfig: no suite-level cores
        # needed for the slowdown columns to appear.
        config = ExperimentConfig(
            n_functions=16, seed=9, duration_days=1.0, training_days=0.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[9], policies=("fixed-10min-indexed",),
            scenario="cpu-starved", engine="event",
        )
        outcome = suite.run()
        latency = outcome.results[9]["fixed-10min-indexed"].latency
        assert latency.cpu_scheduled_events == latency.total_events
        assert latency.slo_ms == 1000.0  # the scenario default
        assert "slowdown_p50" in outcome.seed_table(9).render()

    def test_cores_require_an_event_engine(self):
        with pytest.raises(ValueError, match="event"):
            ExperimentSuite(policies=("fixed-10min",), cores=2)
        with pytest.raises(ValueError, match="event"):
            ExperimentSuite(policies=("fixed-10min",), slo_ms=100.0)

    def test_scheduler_requires_cores(self):
        with pytest.raises(ValueError, match="cores"):
            ExperimentSuite(
                policies=("fixed-10min",), engine="event", scheduler="srtf"
            )

    def test_unknown_scheduler_fails_fast(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ExperimentSuite(
                policies=("fixed-10min",), engine="event",
                cores=2, scheduler="lottery",
            )

    def test_cpu_cells_cache_separately(self, tmp_path):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="bursty", engine="event", cache_dir=tmp_path,
        )
        plain = ExperimentSuite(**kwargs).run()
        contended = ExperimentSuite(**kwargs, cores=1, scheduler="srtf").run()
        # The CpuConfig is part of the cache key: the contended run may not
        # be served the CPU-free entry.
        assert contended.cache_misses > 0
        latency = contended.results[5]["fixed-10min"].latency
        assert latency.cpu_scheduled_events == latency.total_events
        assert plain.results[5]["fixed-10min"].latency.cpu_scheduled_events == 0
        # Re-running the contended sweep hits its own entry, CPU stats intact.
        cached = ExperimentSuite(**kwargs, cores=1, scheduler="srtf").run()
        assert cached.cache_hits > 0 and cached.cache_misses == 0
        cached_latency = cached.results[5]["fixed-10min"].latency
        assert cached_latency.cpu_scheduled_events == latency.total_events

    def test_event_engine_cells_cache_separately_from_vectorized(self, tmp_path):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("fixed-10min",),
            cache_dir=tmp_path,
        )
        vectorized = ExperimentSuite(**kwargs, engine="vectorized").run()
        event = ExperimentSuite(**kwargs, engine="event").run()
        # Different engines never share cache entries (the event result must
        # carry its latency block) ...
        assert event.cache_misses > 0
        assert event.results[5]["fixed-10min"].latency is not None
        # ... yet their minute aggregates are fingerprint-identical, and a
        # re-run of the event sweep is served from cache latency included.
        assert (
            vectorized.results[5]["fixed-10min"].deterministic_fingerprint()
            == event.results[5]["fixed-10min"].deterministic_fingerprint()
        )
        cached = ExperimentSuite(**kwargs, engine="event").run()
        assert cached.cache_hits > 0 and cached.cache_misses == 0
        assert cached.results[5]["fixed-10min"].latency is not None

    def test_placement_override_reaches_every_cell(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="hot-shard", placement="least-loaded",
        )
        outcome = suite.run()
        cluster = outcome.results[5]["fixed-10min"].cluster
        assert cluster is not None
        assert cluster.placement == "least-loaded"
        table = outcome.cluster_table(5)
        assert "placement least-loaded" in table.render()
        assert "migrations" in table.render()

    def test_unknown_placement_fails_fast(self):
        with pytest.raises(ValueError, match="unknown placement"):
            ExperimentSuite(scenario="hot-shard", placement="quantum")

    def test_placement_requires_a_scenario(self):
        with pytest.raises(ValueError, match="requires a scenario"):
            ExperimentSuite(placement="least-loaded")

    def test_placement_requires_a_cluster_scenario(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="bursty", placement="least-loaded",
        )
        with pytest.raises(ValueError, match="prescribes no cluster"):
            suite.run()

    def test_streaming_sweep_is_deterministic_across_runs(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("fixed-10min-indexed",),
            scenario="load-ramp", engine="event-feedback", streaming=True,
        )
        first = ExperimentSuite(**kwargs).run()
        second = ExperimentSuite(**kwargs).run()
        assert (
            first.results[5]["fixed-10min-indexed"].deterministic_fingerprint()
            == second.results[5]["fixed-10min-indexed"].deterministic_fingerprint()
        )

    def test_streaming_mode_withholds_the_training_window(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("hybrid-function-indexed",),
            scenario="load-ramp",
        )
        trained = ExperimentSuite(**kwargs).run()
        streaming = ExperimentSuite(**kwargs, streaming=True).run()
        # The histogram policy's offline phase (and warm-up replay) must be
        # gone: a policy entering cold produces different decisions.
        assert (
            trained.results[5]["hybrid-function-indexed"].deterministic_fingerprint()
            != streaming.results[5]["hybrid-function-indexed"].deterministic_fingerprint()
        )

    def test_streaming_cells_cache_separately(self, tmp_path):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("fixed-10min-indexed",),
            scenario="load-ramp", cache_dir=tmp_path,
        )
        ExperimentSuite(**kwargs).run()
        streaming = ExperimentSuite(**kwargs, streaming=True).run()
        assert streaming.cache_misses > 0  # never served a trained cell
        cached = ExperimentSuite(**kwargs, streaming=True).run()
        assert cached.cache_hits > 0 and cached.cache_misses == 0

    def test_unknown_engine_fails_fast(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExperimentSuite(engine="quantum")

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ExperimentSuite(scenario="warp-speed")

    def test_scenario_params_require_a_scenario(self):
        with pytest.raises(ValueError, match="requires a scenario"):
            ExperimentSuite(scenario_params={"squeeze": 2.0})


class TestRq6Report:
    """The slowdown report must render across a scheduler × cores grid —
    including on the real-shaped ``azure2019-fixture`` trace, which brings no
    CPU config of its own and relies entirely on the suite-level override."""

    def test_rq6_renders_on_the_azure_fixture(self):
        from repro.experiments.rq6_slowdown import slowdown_rq, slowdown_rq_table

        config = ExperimentConfig(
            n_functions=12, seed=5, duration_days=1.0, training_days=0.5,
            warmup_minutes=60,
        )
        report = slowdown_rq(
            scenarios=("azure2019-fixture",),
            policies=("fixed-10min-indexed",),
            schedulers=("fifo", "srtf"),
            cores=(1,),
            seeds=(5,),
            config=config,
            slo_ms=500.0,
        )
        cells = report["azure2019-fixture"]
        assert set(cells) == {
            ("fixed-10min-indexed", "fifo", 1),
            ("fixed-10min-indexed", "srtf", 1),
        }
        for stats in cells.values():
            assert stats.cpu_scheduled_events > 0
            assert stats.slo_checked_events == stats.cpu_scheduled_events
        rendered = slowdown_rq_table(report).render(float_format="{:.2f}")
        assert "RQ6" in rendered
        assert "azure2019-fixture" in rendered
        assert "srtf" in rendered
        assert "slowdown_p99" in rendered

    def test_rq6_default_grid_covers_both_cpu_scenarios(self):
        from repro.experiments.rq6_slowdown import (
            DEFAULT_RQ6_SCENARIOS,
            DEFAULT_RQ6_SCHEDULERS,
        )

        assert set(DEFAULT_RQ6_SCENARIOS) == CPU_SCENARIOS
        assert "fifo" in DEFAULT_RQ6_SCHEDULERS
