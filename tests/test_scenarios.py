"""Tests for the scenario registry and its sweep/CLI integration."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentSuite
from repro.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)

TINY = dict(seed=5, n_functions=40, days=3.0, training_days=2.0)

EXPECTED = {"azure", "diurnal", "bursty", "drift", "flash-crowd", "capacity-squeeze"}


class TestRegistry:
    def test_builtin_catalog_is_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_unknown_scenario_raises_with_the_catalog(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("black-friday")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(SCENARIO_REGISTRY["azure"])

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            build_scenario("drift", **TINY, gravity=9.81)

    def test_custom_scenario_registration(self):
        def build(seed, n_functions, days, training_days):
            return build_scenario("azure", seed=seed, n_functions=n_functions,
                                  days=days, training_days=training_days)

        name = "test-custom-scenario"
        register_scenario(Scenario(name=name, description="azure alias", builder=build))
        try:
            workload = build_scenario(name, **TINY)
            assert workload.split.simulation.duration_minutes == 1440
        finally:
            del SCENARIO_REGISTRY[name]


class TestBuiltinScenarios:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_builds_are_deterministic(self, name):
        first = build_scenario(name, **TINY)
        second = build_scenario(name, **TINY)
        assert (
            first.split.simulation.fingerprint()
            == second.split.simulation.fingerprint()
        )
        assert (
            first.split.training.fingerprint() == second.split.training.fingerprint()
        )
        assert first.cluster == second.cluster

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_split_matches_the_requested_shape(self, name):
        workload = build_scenario(name, **TINY)
        assert workload.split.training.duration_minutes == 2 * 1440
        assert workload.split.simulation.duration_minutes == 1440
        assert len(workload.split.simulation) == TINY["n_functions"]

    def test_seeds_produce_different_workloads(self):
        a = build_scenario("bursty", **{**TINY, "seed": 1})
        b = build_scenario("bursty", **{**TINY, "seed": 2})
        assert a.split.simulation.fingerprint() != b.split.simulation.fingerprint()

    def test_capacity_squeeze_prescribes_a_cluster(self):
        workload = build_scenario("capacity-squeeze", **TINY)
        assert workload.cluster is not None
        assert workload.cluster.n_nodes == 4
        assert workload.cluster.memory_capacity >= workload.cluster.n_nodes
        # Other scenarios run the paper's uncapped setting.
        assert build_scenario("azure", **TINY).cluster is None

    def test_flash_crowd_spikes_land_in_the_simulation_window(self):
        crowd = build_scenario("flash-crowd", **TINY)
        base = build_scenario("azure", **TINY)
        # The training windows are identical; only simulation traffic differs.
        assert crowd.split.training.fingerprint() == base.split.training.fingerprint()
        assert (
            crowd.split.simulation.total_invocations()
            > base.split.simulation.total_invocations()
        )

    def test_diurnal_traffic_is_day_night_modulated(self):
        workload = build_scenario("diurnal", **TINY)
        sim = workload.split.simulation
        per_minute = np.zeros(sim.duration_minutes, dtype=np.int64)
        for fid in sim.function_ids:
            per_minute += sim.series(fid)
        halves = per_minute.reshape(2, 720).sum(axis=1)
        ratio = halves.max() / max(halves.min(), 1)
        assert ratio > 1.5  # a pronounced daily swing, not flat Poisson


class TestSuiteIntegration:
    def test_capacity_squeeze_sweep_reports_evictions(self, tmp_path):
        config = ExperimentConfig(
            n_functions=30, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config,
            seeds=[5],
            policies=("spes", "fixed-10min"),
            scenario="capacity-squeeze",
        )
        outcome = suite.run()
        for result in outcome.results[5].values():
            assert result.cluster is not None
        table = outcome.seed_table(5).render()
        assert "evictions" in table and "cap_cold_starts" in table
        cluster_table = outcome.cluster_table(5)
        assert cluster_table is not None
        assert "Capacity effects" in cluster_table.render()

    def test_uncapped_sweep_has_no_cluster_table(self):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        suite = ExperimentSuite(
            config=config, seeds=[5], policies=("fixed-10min",), scenario="bursty"
        )
        outcome = suite.run()
        assert outcome.cluster_table(5) is None
        assert "evictions" not in outcome.seed_table(5).render()

    def test_scenario_cells_hit_the_cache_across_sweeps(self, tmp_path):
        config = ExperimentConfig(
            n_functions=25, seed=5, duration_days=2.0, training_days=1.5,
            warmup_minutes=60,
        )
        kwargs = dict(
            config=config, seeds=[5], policies=("fixed-10min",),
            scenario="capacity-squeeze", cache_dir=tmp_path,
        )
        first = ExperimentSuite(**kwargs).run()
        second = ExperimentSuite(**kwargs).run()
        assert first.cache_misses > 0
        assert second.cache_misses == 0 and second.cache_hits > 0
        assert (
            first.results[5]["fixed-10min"].deterministic_fingerprint()
            == second.results[5]["fixed-10min"].deterministic_fingerprint()
        )

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ExperimentSuite(scenario="warp-speed")

    def test_scenario_params_require_a_scenario(self):
        with pytest.raises(ValueError, match="requires a scenario"):
            ExperimentSuite(scenario_params={"squeeze": 2.0})
