"""Tests for the co-occurrence study (§III-B2)."""

import numpy as np

from repro.analysis import cooccurrence_study
from repro.traces import FunctionRecord, Trace, TriggerType
from repro.traces.schema import TraceMetadata


def build_related_trace(duration=2000, seed=0):
    """Two related apps with co-firing functions plus unrelated noise functions."""
    rng = np.random.default_rng(seed)
    counts = {}
    records = []
    # App 1: two functions firing together.
    base = np.zeros(duration, dtype=np.int64)
    base[np.sort(rng.choice(duration, size=200, replace=False))] = 1
    counts["a1-f1"] = base
    counts["a1-f2"] = base.copy()
    records.append(FunctionRecord("a1-f1", "app1", "o1", TriggerType.QUEUE))
    records.append(FunctionRecord("a1-f2", "app1", "o1", TriggerType.QUEUE))
    # Unrelated functions with independent activity.
    for index in range(10):
        series = (rng.random(duration) < 0.05).astype(np.int64)
        fid = f"noise-{index}"
        counts[fid] = series
        records.append(FunctionRecord(fid, f"napp-{index}", f"nowner-{index}", TriggerType.HTTP))
    return Trace(records, counts, TraceMetadata(name="t", duration_minutes=duration))


class TestCooccurrenceStudy:
    def test_candidates_have_higher_cor_than_negatives(self):
        trace = build_related_trace()
        report = cooccurrence_study(trace, negative_samples_per_function=10, seed=1)
        assert report.candidate_cor > report.negative_cor
        assert report.candidate_to_negative_ratio > 2.0

    def test_same_trigger_candidates_more_correlated(self):
        trace = build_related_trace()
        report = cooccurrence_study(trace, negative_samples_per_function=10, seed=1)
        # All candidate pairs share the queue trigger in this construction.
        assert report.same_trigger_cor >= report.different_trigger_cor

    def test_pairs_counted(self):
        trace = build_related_trace()
        report = cooccurrence_study(trace, negative_samples_per_function=5, seed=1)
        assert report.pairs_evaluated >= 2

    def test_max_functions_cap(self):
        trace = build_related_trace()
        report = cooccurrence_study(trace, max_functions=3, negative_samples_per_function=5)
        assert report.pairs_evaluated >= 0

    def test_deterministic_given_seed(self):
        trace = build_related_trace()
        first = cooccurrence_study(trace, negative_samples_per_function=10, seed=7)
        second = cooccurrence_study(trace, negative_samples_per_function=10, seed=7)
        assert first.negative_cor == second.negative_cor
