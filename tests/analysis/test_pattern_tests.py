"""Tests for the KS-based pattern tests (§III-B1)."""

import numpy as np

from repro.analysis import http_poisson_test, timer_periodicity_test
from repro.traces import FunctionRecord, Trace, TriggerType, archetypes
from repro.traces.schema import TraceMetadata


def build_trace(counts, records):
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name="t", duration_minutes=duration))


class TestTimerPeriodicity:
    def test_periodic_timers_detected(self, rng):
        duration = 5000
        counts = {}
        records = []
        for index in range(5):
            fid = f"timer-{index}"
            counts[fid] = archetypes.generate_periodic(
                rng, duration, period=30, jitter_probability=0.0
            )
            records.append(FunctionRecord(fid, f"a{index}", f"o{index}", TriggerType.TIMER))
        report = timer_periodicity_test(build_trace(counts, records))
        assert report.population == 5
        assert report.matching_fraction > 0.5

    def test_poisson_timers_not_periodic(self, rng):
        duration = 5000
        counts = {}
        records = []
        for index in range(5):
            fid = f"timer-{index}"
            counts[fid] = archetypes.generate_dense_poisson(
                rng, duration, rate_per_minute=0.2, diurnal=False
            )
            records.append(FunctionRecord(fid, f"a{index}", f"o{index}", TriggerType.TIMER))
        report = timer_periodicity_test(build_trace(counts, records))
        assert report.matching_fraction < 0.5

    def test_insufficient_data_counted(self, rng):
        duration = 1000
        sparse = np.zeros(duration, dtype=np.int64)
        sparse[10] = 1
        records = [FunctionRecord("t", "a", "o", TriggerType.TIMER)]
        report = timer_periodicity_test(build_trace({"t": sparse}, records))
        assert report.insufficient == 1
        assert report.tested == 0


class TestHttpPoisson:
    def test_poisson_http_detected(self, rng):
        duration = 20000
        counts = {}
        records = []
        for index in range(5):
            fid = f"http-{index}"
            counts[fid] = archetypes.generate_dense_poisson(
                rng, duration, rate_per_minute=0.05, diurnal=False
            )
            records.append(FunctionRecord(fid, f"a{index}", f"o{index}", TriggerType.HTTP))
        report = http_poisson_test(build_trace(counts, records))
        assert report.matching_fraction > 0.5

    def test_periodic_http_rejected(self, rng):
        duration = 5000
        counts = {"http-0": archetypes.generate_periodic(rng, duration, period=20, jitter_probability=0.0)}
        records = [FunctionRecord("http-0", "a", "o", TriggerType.HTTP)]
        report = http_poisson_test(build_trace(counts, records))
        assert report.matching_fraction == 0.0

    def test_non_http_functions_not_counted(self, rng):
        duration = 2000
        counts = {"t": archetypes.generate_periodic(rng, duration, period=10)}
        records = [FunctionRecord("t", "a", "o", TriggerType.TIMER)]
        report = http_poisson_test(build_trace(counts, records))
        assert report.population == 0
