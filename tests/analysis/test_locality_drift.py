"""Tests for the temporal-locality (Fig. 6) and concept-drift (Fig. 4) analyses."""

import numpy as np

from repro.analysis import detect_shifts, drift_study, temporal_locality_study
from repro.analysis.locality import normalized_burst_series
from repro.traces import AzureTraceGenerator, FunctionRecord, GeneratorProfile, Trace, archetypes
from repro.traces.schema import TraceMetadata


def build_trace(counts, records):
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name="t", duration_minutes=duration))


class TestLocality:
    def test_bursty_functions_detected(self, rng):
        duration = 20000
        counts = {}
        records = []
        for index in range(4):
            fid = f"bursty-{index}"
            counts[fid] = archetypes.generate_bursty(
                rng, duration, burst_count=4, burst_length_range=(15, 30), min_gap=3000
            )
            records.append(FunctionRecord(fid, f"a{index}", f"o{index}"))
        report = temporal_locality_study(build_trace(counts, records))
        assert report.functions_considered == 4
        assert report.bursty_fraction > 0.5
        assert report.mean_burst_concentration > 0.5

    def test_scattered_functions_not_bursty(self, rng):
        duration = 20000
        series = np.zeros(duration, dtype=np.int64)
        series[rng.choice(duration, size=30, replace=False)] = 1
        records = [FunctionRecord("scatter", "a", "o")]
        report = temporal_locality_study(build_trace({"scatter": series}, records))
        assert report.bursty_fraction < 0.5

    def test_frequency_bounds_respected(self, small_trace):
        report = temporal_locality_study(small_trace, min_invocations=5, max_invocations=100)
        for fid in report.per_function_concentration:
            invoked = int((small_trace.series(fid) > 0).sum())
            assert 5 <= invoked <= 100

    def test_normalized_series_bounded(self, small_trace):
        fid = small_trace.invoked_function_ids()[0]
        normalized = normalized_burst_series(small_trace, fid)
        assert normalized.max() <= 1.0
        assert normalized.min() >= 0.0


class TestDrift:
    def test_change_point_detected_in_drifting_series(self, rng):
        series = archetypes.generate_drifting(
            rng, 6 * 1440, first_period=120, second_rate=1.0, change_point_fraction=0.5
        )
        points = detect_shifts(series, window_minutes=1440)
        assert points
        assert any(2 * 1440 <= point <= 4 * 1440 for point in points)

    def test_stable_series_has_no_change_points(self, rng):
        series = archetypes.generate_dense_poisson(rng, 6 * 1440, rate_per_minute=0.5, diurnal=False)
        assert detect_shifts(series, window_minutes=1440) == []

    def test_drift_study_finds_drifting_population(self):
        profile = GeneratorProfile(n_functions=150, seed=31, drifting_fraction=0.1)
        trace = AzureTraceGenerator(profile).generate()
        report = drift_study(trace)
        assert report.functions_considered > 0
        assert 0.0 <= report.drifting_fraction <= 1.0

    def test_detect_shifts_validation(self):
        import pytest

        with pytest.raises(ValueError):
            detect_shifts(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            detect_shifts(np.zeros(10), window_minutes=0)
