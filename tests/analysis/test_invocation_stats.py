"""Tests for the Fig. 3 / Fig. 5 trace statistics."""

import pytest

from repro.analysis import (
    invocation_count_histogram,
    invocation_count_summary,
    trigger_proportions,
)


class TestHistogram:
    def test_counts_every_function_once(self, small_trace):
        histogram = invocation_count_histogram(small_trace)
        assert sum(histogram.values()) == len(small_trace)

    def test_zero_bucket(self, small_trace):
        histogram = invocation_count_histogram(small_trace)
        never = sum(
            1 for fid in small_trace.function_ids if small_trace.total_invocations(fid) == 0
        )
        assert histogram["0"] == never

    def test_invalid_parameters_rejected(self, small_trace):
        with pytest.raises(ValueError):
            invocation_count_histogram(small_trace, bins_per_decade=0)
        with pytest.raises(ValueError):
            invocation_count_histogram(small_trace, max_decade=0)

    def test_heavy_tail_visible(self, small_trace):
        summary = invocation_count_summary(small_trace)
        assert summary["skewness_ratio"] > 1.0

    def test_summary_fields(self, small_trace):
        summary = invocation_count_summary(small_trace)
        assert summary["functions"] == len(small_trace)
        assert summary["invoked_functions"] <= summary["functions"]
        assert summary["median"] <= summary["p90"] <= summary["p99"] <= summary["max"]


class TestTriggerProportions:
    def test_fractions_sum_to_one(self, small_trace):
        proportions = trigger_proportions(small_trace)
        assert sum(proportions.values()) == pytest.approx(1.0)

    def test_known_trigger_values(self, small_trace):
        proportions = trigger_proportions(small_trace)
        valid = {
            "http", "timer", "queue", "storage", "event",
            "orchestration", "others", "combination",
        }
        assert set(proportions).issubset(valid)
