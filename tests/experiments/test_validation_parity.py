"""Cross-layer validation parity: one bad configuration, one message.

Before :class:`~repro.simulation.spec.RunSpec`, the simulator, the parallel
runner and the experiment suite each carried their own copy of the
cross-field rules — and the copies drifted (the suite's MB-mode message was
a shortened variant of the simulator's).  Now all three entry points build
the same spec, so they must reject the same invalid configuration with the
*identical* ``ValueError`` message.  This suite pins that parity.
"""

from __future__ import annotations

import pytest

from pin_workload import pin_split
from repro.experiments import ExperimentConfig, ExperimentSuite, ParallelRunner
from repro.simulation import RunSpec, Simulator

#: Invalid run-shape keyword sets every entry point accepts verbatim.
BAD_CONFIGS = {
    "mb-on-reference": dict(engine="reference", memory_mode="mb"),
    "unknown-engine": dict(engine="quantum"),
    "unknown-memory-mode": dict(memory_mode="gb"),
    "negative-shards": dict(shards=-1),
}


def _raised_message(exercise) -> str:
    with pytest.raises(ValueError) as excinfo:
        exercise()
    return str(excinfo.value)


@pytest.mark.parametrize("kwargs", BAD_CONFIGS.values(), ids=BAD_CONFIGS.keys())
def test_all_layers_raise_the_identical_message(kwargs):
    split = pin_split()
    spec_message = _raised_message(lambda: RunSpec.build(**kwargs))
    simulator_message = _raised_message(
        lambda: Simulator(
            simulation_trace=split.simulation,
            training_trace=split.training,
            **kwargs,
        )
    )
    runner_message = _raised_message(lambda: ParallelRunner({"t": split}, **kwargs))
    suite_message = _raised_message(
        lambda: ExperimentSuite(config=ExperimentConfig(n_functions=4), **kwargs)
    )
    assert simulator_message == spec_message
    assert runner_message == spec_message
    assert suite_message == spec_message


def test_mb_reference_message_keeps_the_historic_prefix():
    # Pre-unification tests (and downstream scripts) matched the suite's old
    # short message; the unified message must keep starting with it.
    message = _raised_message(
        lambda: RunSpec.build(engine="reference", memory_mode="mb")
    )
    assert message.startswith("MB-mode accounting requires a mask-based engine")


@pytest.mark.parametrize(
    "build",
    [
        lambda split, spec: Simulator(
            simulation_trace=split.simulation,
            training_trace=split.training,
            spec=spec,
            engine="event",
        ),
        lambda split, spec: ParallelRunner({"t": split}, spec=spec, engine="event"),
        lambda split, spec: ExperimentSuite(
            config=ExperimentConfig(n_functions=4), spec=spec, engine="event"
        ),
    ],
    ids=["simulator", "runner", "suite"],
)
def test_spec_conflicts_with_individual_knobs_everywhere(build):
    split = pin_split()
    with pytest.raises(ValueError, match="either spec= or the individual run knobs"):
        build(split, RunSpec())
