"""Run-manifest round trip on the hermetic ``azure2019-fixture`` pipeline.

Records a small sweep as a manifest, replays it from the document alone and
checks the replay is *fingerprint-identical* — plus the three refusal
paths: a foreign engine version, a diverging trace fingerprint, and a
diverging result fingerprint, each with a clear error.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.experiments import ExperimentConfig, ExperimentSuite
from repro.experiments.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    replay_manifest,
    suite_from_manifest,
    verify_results,
    verify_trace_fingerprints,
    write_manifest,
)
from repro.simulation.spec import ENGINE_VERSION

SEEDS = [2024]
POLICIES = ["spes", "fixed-10min"]


def small_suite(**overrides) -> ExperimentSuite:
    """A seconds-scale suite over the hermetic azure2019 fixture."""
    kwargs = dict(
        config=ExperimentConfig(
            n_functions=8, seed=SEEDS[0], duration_days=2.0, training_days=1.0
        ),
        seeds=SEEDS,
        policies=POLICIES,
        scenario="azure2019-fixture",
        scenario_params={"population": 16},
    )
    kwargs.update(overrides)
    return ExperimentSuite(**kwargs)


@pytest.fixture(scope="module")
def recorded():
    """One executed sweep and its manifest, shared across the module."""
    suite = small_suite()
    outcome = suite.run()
    return suite, outcome, build_manifest(suite, outcome)


class TestRecord:
    def test_manifest_shape(self, recorded):
        suite, _, manifest = recorded
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["engine_version"] == ENGINE_VERSION
        assert manifest["spec"] == suite.spec.canonical()
        assert manifest["spec_digest"] == suite.spec.spec_digest()
        assert manifest["seeds"] == SEEDS
        assert manifest["policies"] == POLICIES
        assert set(manifest["results"]) == {
            f"seed{seed}/{policy}" for seed in SEEDS for policy in POLICIES
        }
        assert set(manifest["trace_fingerprints"]) == {f"seed{seed}" for seed in SEEDS}

    def test_write_load_round_trip(self, recorded, tmp_path):
        _, _, manifest = recorded
        path = write_manifest(tmp_path / "run.json", manifest)
        assert load_manifest(path) == json.loads(json.dumps(manifest))

    def test_written_json_is_stable(self, recorded, tmp_path):
        _, _, manifest = recorded
        first = write_manifest(tmp_path / "a.json", manifest).read_text()
        second = write_manifest(tmp_path / "b.json", manifest).read_text()
        assert first == second


class TestReplay:
    def test_suite_from_manifest_rebuilds_the_spec_and_workload(self, recorded):
        suite, _, manifest = recorded
        rebuilt = suite_from_manifest(manifest)
        assert rebuilt.spec == suite.spec
        assert rebuilt.seeds == suite.seeds
        assert rebuilt.policies == suite.policies
        assert rebuilt.scenario == suite.scenario
        assert rebuilt.scenario_params == suite.scenario_params
        assert rebuilt.config.n_functions == suite.config.n_functions

    def test_replay_is_fingerprint_identical(self, recorded):
        _, _, manifest = recorded
        _, outcome = replay_manifest(manifest)
        actual = {
            f"seed{seed}/{policy}": result.deterministic_fingerprint()
            for seed, per_policy in outcome.results.items()
            for policy, result in per_policy.items()
        }
        assert actual == manifest["results"]

    def test_verify_results_counts_cells(self, recorded):
        _, outcome, manifest = recorded
        assert verify_results(manifest, outcome) == len(SEEDS) * len(POLICIES)


class TestRefusals:
    def test_foreign_engine_version_is_rejected_at_load(self, recorded, tmp_path):
        _, _, manifest = recorded
        tampered = copy.deepcopy(manifest)
        tampered["engine_version"] = ENGINE_VERSION - 1
        path = write_manifest(tmp_path / "old.json", tampered)
        with pytest.raises(ManifestError, match="engine version"):
            load_manifest(path)

    def test_unknown_manifest_version_is_rejected(self, recorded, tmp_path):
        _, _, manifest = recorded
        tampered = copy.deepcopy(manifest)
        tampered["manifest_version"] = MANIFEST_VERSION + 1
        path = write_manifest(tmp_path / "future.json", tampered)
        with pytest.raises(ManifestError, match="schema version"):
            load_manifest(path)

    def test_non_manifest_json_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-manifest.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ManifestError, match="not a run manifest"):
            load_manifest(path)

    def test_missing_file_is_a_manifest_error(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read manifest"):
            load_manifest(tmp_path / "absent.json")

    def test_diverging_trace_fingerprint_refuses_before_running(self, recorded):
        _, _, manifest = recorded
        tampered = copy.deepcopy(manifest)
        key = f"seed{SEEDS[0]}"
        tampered["trace_fingerprints"][key][0] = "0" * 64
        suite = suite_from_manifest(tampered)
        with pytest.raises(ManifestError, match="trace fingerprints diverge"):
            verify_trace_fingerprints(tampered, suite)

    def test_diverging_result_fingerprint_fails_verification(self, recorded):
        _, outcome, manifest = recorded
        tampered = copy.deepcopy(manifest)
        tampered["results"][f"seed{SEEDS[0]}/spes"] = "0" * 64
        with pytest.raises(ManifestError, match="result fingerprints diverge"):
            verify_results(tampered, outcome)

    def test_edited_spec_digest_is_rejected(self, recorded):
        _, _, manifest = recorded
        tampered = copy.deepcopy(manifest)
        tampered["spec_digest"] = "0" * 64
        with pytest.raises(ManifestError, match="spec_digest"):
            suite_from_manifest(tampered)

    def test_per_cell_spec_is_rejected_as_base(self, recorded):
        _, _, manifest = recorded
        tampered = copy.deepcopy(manifest)
        tampered["spec"]["cluster"] = {"memory_capacity": 8}
        with pytest.raises(ManifestError, match="base spec"):
            suite_from_manifest(tampered)
