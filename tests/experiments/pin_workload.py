"""The frozen workload and configuration matrix behind the cache-key pins.

The golden cache-key suite (``test_cache_key_pins.py``) asserts that the
:meth:`~repro.experiments.parallel.ParallelRunner.cache_key` digests of a
representative configuration matrix never change: every digest was computed
with the hand-assembled pre-``RunSpec`` key derivation and pinned, so the
``canonical()``-derived keys must reproduce them byte-for-byte — otherwise
every user's on-disk result cache would silently go cold.

Everything here is hand-built and arithmetic-deterministic (no RNG, no
generator), so the pins depend only on the cache-key derivation itself plus
the trace fingerprint format — exactly the contract under test.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.parallel import ParallelRunner, PolicySpec
from repro.simulation import ClusterModel, EventConfig
from repro.simulation.scheduling import CpuConfig
from repro.traces import FunctionRecord, Trace, TriggerType, split_trace
from repro.traces.schema import TraceMetadata

#: Minutes in the frozen workload (2 days; the split trains on day 1).
PIN_DURATION = 2880

TRIGGER_CYCLE = (
    TriggerType.HTTP,
    TriggerType.TIMER,
    TriggerType.QUEUE,
    TriggerType.OTHERS,
)


def pin_split():
    """A 6-function, 2-day train/simulation split built from arithmetic."""
    records = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(6):
        function_id = f"pin-{i:02d}"
        records.append(
            FunctionRecord(
                function_id=function_id,
                app_id=f"app-{i // 2:02d}",
                owner_id=f"owner-{i // 3:02d}",
                trigger=TRIGGER_CYCLE[i % len(TRIGGER_CYCLE)],
                archetype="periodic",
            )
        )
        series = np.zeros(PIN_DURATION, dtype=np.int64)
        series[:: 7 + i] = 1 + (i % 2)
        counts[function_id] = series
    metadata = TraceMetadata(name="cache-key-pin", duration_minutes=PIN_DURATION, seed=0)
    return split_trace(Trace(records, counts, metadata), training_days=1.0)


def pin_specs() -> Dict[str, PolicySpec]:
    """The policy specs every pinned configuration is keyed with."""
    return {
        "fixed-10min": PolicySpec.of("fixed-keepalive", keep_alive_minutes=10),
        "hybrid-function": PolicySpec.of("hybrid-function"),
    }


def pin_runners(split) -> Dict[str, ParallelRunner]:
    """The representative configuration matrix, one runner per scenario."""
    traces = {"t": split}
    return {
        "default": ParallelRunner(traces, warmup_minutes=1440),
        "event-cpu": ParallelRunner(
            traces,
            warmup_minutes=1440,
            engine="event",
            events={
                "t": EventConfig(
                    seed=7,
                    cpu=CpuConfig(cores_per_node=2, scheduler="srtf"),
                    slo_ms=500.0,
                )
            },
        ),
        "sharded": ParallelRunner(
            traces, warmup_minutes=1440, shards=4, shard_placement="least-loaded"
        ),
        "mb": ParallelRunner(traces, warmup_minutes=1440, memory_mode="mb"),
        "streaming": ParallelRunner(traces, warmup_minutes=0, streaming=True),
        "cluster": ParallelRunner(
            traces,
            warmup_minutes=1440,
            clusters={"t": ClusterModel(memory_capacity=8, n_nodes=2)},
        ),
    }


def compute_keys() -> Dict[str, str]:
    """``{"config/policy": cache_key}`` over the whole matrix."""
    split = pin_split()
    keys: Dict[str, str] = {}
    for config_name, runner in pin_runners(split).items():
        for spec_name, spec in pin_specs().items():
            cell = runner.cell(spec_name, spec, "t", base_seed=0)
            keys[f"{config_name}/{spec_name}"] = runner.cache_key(cell)
    return keys


if __name__ == "__main__":
    for name, key in compute_keys().items():
        print(f'    "{name}": "{key}",')
