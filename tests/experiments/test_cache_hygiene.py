"""Tests for result-cache hygiene and runner resource warnings (satellite #2)."""

import os
import time

import pytest

from repro.experiments import ParallelRunner, PolicySpec, ResultCache
from repro.simulation import SimulationResult
from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace


@pytest.fixture(scope="module")
def split():
    trace = AzureTraceGenerator(GeneratorProfile.small(seed=4)).generate()
    return split_trace(trace, training_days=2.0)


class TestResultCachePrune:
    def test_prunes_only_entries_older_than_the_horizon(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("old", SimulationResult(policy_name="p", duration_minutes=1))
        cache.put("new", SimulationResult(policy_name="p", duration_minutes=1))
        stale = tmp_path / "old.pkl"
        two_days_ago = time.time() - 2 * 86400
        os.utime(stale, (two_days_ago, two_days_ago))

        removed = cache.prune(max_age_days=1)

        assert removed == 1
        assert not stale.exists()
        assert cache.get("new") is not None

    def test_prune_sweeps_stray_temporary_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        stray = tmp_path / "deadbeef.12345.tmp"
        stray.write_bytes(b"crashed writer leftovers")
        old = time.time() - 10 * 86400
        os.utime(stray, (old, old))

        assert cache.prune(max_age_days=7) == 1
        assert not stray.exists()

    def test_prune_zero_days_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", SimulationResult(policy_name="p", duration_minutes=1))
        cache.put("b", SimulationResult(policy_name="p", duration_minutes=1))
        assert cache.prune(max_age_days=0) == 2
        assert cache.get("a") is None

    def test_negative_age_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(max_age_days=-1)


class TestWorkerOversubscriptionWarning:
    def test_warns_when_workers_exceed_cpu_count(self, split):
        excessive = (os.cpu_count() or 1) + 1
        with pytest.warns(RuntimeWarning, match="exceeds"):
            ParallelRunner({"w": split}, workers=excessive, warmup_minutes=0)

    def test_no_warning_at_or_below_cpu_count(self, split, recwarn):
        ParallelRunner({"w": split}, workers=1, warmup_minutes=0)
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


class TestClusterCacheKeys:
    def test_cluster_configuration_is_part_of_the_cache_key(self, split):
        from repro.simulation import ClusterModel

        spec = PolicySpec.of("fixed-10min")
        uncapped = ParallelRunner({"w": split}, warmup_minutes=0)
        capped = ParallelRunner(
            {"w": split},
            warmup_minutes=0,
            clusters={"w": ClusterModel(memory_capacity=8, n_nodes=2)},
        )
        cell_a = uncapped.cell("c", spec, "w")
        cell_b = capped.cell("c", spec, "w")
        assert uncapped.cache_key(cell_a) != capped.cache_key(cell_b)

    def test_clusters_must_reference_known_trace_keys(self, split):
        from repro.simulation import ClusterModel

        with pytest.raises(KeyError, match="unknown trace key"):
            ParallelRunner(
                {"w": split},
                warmup_minutes=0,
                clusters={"elsewhere": ClusterModel(memory_capacity=4)},
            )
