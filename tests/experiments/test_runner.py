"""Tests for the experiment runner and the RQ modules (on a small workload)."""

import numpy as np
import pytest

from repro.core import SpesConfig
from repro.experiments import ExperimentConfig, ExperimentRunner, rq1_coldstart, rq2_memory
from repro.experiments.rq3_tradeoff import givenup_sweep, linear_fit, prewarm_sweep, sweep_table
from repro.experiments.rq4_ablation import (
    ablation_table,
    adaptivity_ablation,
    correlation_ablation,
)


@pytest.fixture(scope="module")
def runner():
    config = ExperimentConfig(
        n_functions=60,
        seed=41,
        duration_days=4.0,
        training_days=3.0,
        warmup_minutes=360,
    )
    return ExperimentRunner(config)


@pytest.fixture(scope="module")
def all_results(runner):
    return runner.run_all()


class TestRunner:
    def test_trace_built_once(self, runner):
        assert runner.trace is runner.trace
        assert runner.trace.duration_minutes == 4 * 1440

    def test_split_matches_config(self, runner):
        assert runner.split.training.duration_minutes == 3 * 1440
        assert runner.split.simulation.duration_minutes == 1440

    def test_run_all_contains_spes_and_baselines(self, all_results):
        assert "spes" in all_results
        assert "fixed-10min" in all_results
        assert "hybrid-application" in all_results
        assert "faascache" in all_results

    def test_results_cached(self, runner):
        first = runner.run_spes()
        second = runner.run_spes()
        assert first is second

    def test_variant_run_with_custom_config(self, runner):
        result = runner.run_spes_variant(SpesConfig(theta_prewarm=1), cache_key="variant-test")
        assert result.policy_name == "spes"
        assert runner.run_spes_variant(SpesConfig(theta_prewarm=1), cache_key="variant-test") is result

    def test_lcs_included_when_requested(self):
        config = ExperimentConfig(
            n_functions=40, seed=1, duration_days=3.0, training_days=2.0, include_lcs=True
        )
        factories = ExperimentRunner(config).baseline_factories()
        assert "lcs" in factories


class TestRq1(object):
    def test_cdf_table_has_policy_columns(self, all_results):
        table = rq1_coldstart.csr_cdf_table(all_results)
        assert set(all_results).issubset(set(table.columns))
        assert len(table.rows) == 21

    def test_headline_improvements_table(self, all_results):
        table = rq1_coldstart.headline_improvements(all_results)
        spes_row = next(row for row in table.rows if row["policy"] == "spes")
        assert spes_row["q3_reduction_by_spes"] is None

    def test_memory_and_always_cold_normalized_to_spes(self, all_results):
        table = rq1_coldstart.memory_and_always_cold(all_results)
        spes_row = next(row for row in table.rows if row["policy"] == "spes")
        assert spes_row["normalized_memory"] == pytest.approx(1.0)

    def test_per_category_csr(self, runner):
        rates = rq1_coldstart.per_category_csr(runner.spes_policy(), runner.run_spes())
        assert rates
        assert all(0.0 <= value <= 1.0 for value in rates.values())

    def test_per_category_table_renders(self, runner):
        table = rq1_coldstart.per_category_csr_table(runner.spes_policy(), runner.run_spes())
        assert table.rows


class TestRq2:
    def test_wmt_emcr_table(self, all_results):
        table = rq2_memory.wmt_and_emcr_table(all_results)
        spes_row = next(row for row in table.rows if row["policy"] == "spes")
        assert spes_row["normalized_wmt"] == pytest.approx(1.0)

    def test_wmt_ratio_per_type(self, runner):
        ratios = rq2_memory.wmt_ratio_per_type(runner.spes_policy(), runner.run_spes())
        assert all(value >= 0.0 for value in ratios.values())

    def test_overhead_table(self, all_results):
        table = rq2_memory.overhead_comparison(all_results)
        assert len(table.rows) == len(all_results)


class TestRq3:
    def test_prewarm_sweep_points(self, runner):
        points = prewarm_sweep(runner, values=(1, 2))
        assert len(points) == 2
        assert all(point.normalized_memory > 0 for point in points)

    def test_givenup_sweep_memory_monotonic_trend(self, runner):
        points = givenup_sweep(runner, scales=(1, 5))
        assert points[1].normalized_memory >= points[0].normalized_memory

    def test_linear_fit_and_table(self, runner):
        points = prewarm_sweep(runner, values=(1, 2, 3))
        slope, intercept = linear_fit(points)
        assert np.isfinite(slope) and np.isfinite(intercept)
        table = sweep_table(points, "theta_prewarm", "sweep")
        assert len(table.rows) == 3

    def test_linear_fit_requires_two_points(self, runner):
        points = prewarm_sweep(runner, values=(2,))
        with pytest.raises(ValueError):
            linear_fit(points)


class TestRq4:
    def test_correlation_ablation_variants(self, runner):
        results = correlation_ablation(runner)
        assert set(results) == {"spes", "w/o-corr", "w/o-online-corr"}

    def test_adaptivity_ablation_variants(self, runner):
        results = adaptivity_ablation(runner)
        assert set(results) == {"spes", "w/o-forgetting", "w/o-adjusting"}

    def test_ablation_table_normalized_to_full_spes(self, runner):
        results = correlation_ablation(runner)
        table = ablation_table(results, "ablation")
        spes_row = next(row for row in table.rows if row["variant"] == "spes")
        assert spes_row["normalized_memory"] == pytest.approx(1.0)
        assert spes_row["normalized_wmt"] == pytest.approx(1.0)
