"""Golden cache-key pins: the on-disk cache-key contract, frozen.

Every digest below was computed with the hand-assembled pre-``RunSpec`` key
derivation over the frozen :mod:`pin_workload` matrix and pinned verbatim.
The :class:`~repro.simulation.spec.RunSpec`-derived keys must reproduce them
byte-for-byte — a drift here means every user's on-disk result cache (and
every recorded run manifest) silently goes cold.

If a *deliberate* key change is ever needed (new semantics), bump
:data:`~repro.simulation.spec.ENGINE_VERSION` and re-pin with::

    PYTHONPATH=src:tests/experiments python tests/experiments/pin_workload.py
"""

from __future__ import annotations

from pin_workload import compute_keys, pin_runners, pin_split, pin_specs

#: ``{"config/policy": sha256}`` — pinned, never edit without an
#: ENGINE_VERSION bump (see module docstring).
PINNED_KEYS = {
    "default/fixed-10min": "0a1b5287c0d5f96b8d6ad9f3317865d09d83e6ac3ca711f90bcfe3cdd68ceefd",
    "default/hybrid-function": "1fdfff6287ce2051f42cd30cd1ee1b4e70e6496982aab6a52582ca2017094d38",
    "event-cpu/fixed-10min": "93b09fdc5605bbac8ee21f285469bf86b419c690c252c2fdbd5b6e62bfa6628e",
    "event-cpu/hybrid-function": "82ec3c3ede6f79bae0f89fe09fc4272b990d334dc387789d9c07aa3086ed6198",
    "sharded/fixed-10min": "a044ec50b99a0bf3039e2bfb8788cc33a3922a32094524f442d848d8e028cf18",
    "sharded/hybrid-function": "608289d849c1f6bb6a6f2fec6c180498468cb08d7d8c6327065b582956e4e7e5",
    "mb/fixed-10min": "cbef44df284223abb97a277cb9ebe8d3eab516709578e0ecfdf4bcbb131bb26e",
    "mb/hybrid-function": "2c9a251cbd435124f6c31557ea9831d0624f46007911b44447c8736d39c1b84e",
    "streaming/fixed-10min": "6a795c0d39066c1771ae084a4e1eb979f08bc34e048af6927ce323f3317dcbb3",
    "streaming/hybrid-function": "3e2eee918a22c895ababc905aa770b43e92a5a7aceb4194b64fddc1199557174",
    "cluster/fixed-10min": "c3cf6c339f0476469042f6d5122f7402de5ae4e5a7863bbc34d477f35c1790f2",
    "cluster/hybrid-function": "b350edb5a74bacffaf8a22125ac8956609582d6d04980dfa913d08623a5d3d0a",
}

#: The pin workload's trace fingerprints (an input of every key above):
#: if these drift the key pins fail for a trace-format reason, not a
#: key-derivation one — this pair localizes the diagnosis.
PINNED_TRAIN_FP = "0b81c17180e92d1ed655879bae4a72ebd682cc422eeb03188e8ad9c247606d94"
PINNED_SIM_FP = "50cabf8fafaf756c4a90b514046efbb7aff9cba135ff9b35a9335b6de2be2a42"


def test_every_pinned_cache_key_reproduces():
    assert compute_keys() == PINNED_KEYS


def test_pin_workload_trace_fingerprints():
    split = pin_split()
    assert split.training.fingerprint() == PINNED_TRAIN_FP
    assert split.simulation.fingerprint() == PINNED_SIM_FP


def test_keys_differ_across_configurations():
    # Sanity on the matrix itself: every configuration keys differently for
    # the same policy — no two rows may collide, or the cache would serve
    # one configuration's result for another.
    keys = compute_keys()
    assert len(set(keys.values())) == len(keys)


def test_cell_run_spec_matches_runner_key():
    # The runner's cache_key is definitionally the per-cell resolved spec's
    # cache_key — pin the delegation, not just the digests.
    split = pin_split()
    for runner in pin_runners(split).values():
        for name, spec in pin_specs().items():
            cell = runner.cell(name, spec, "t", base_seed=0)
            fingerprints = runner.trace_fingerprints()["t"]
            expected = runner.cell_run_spec("t").cache_key(
                fingerprints, cell.spec, cell.seed
            )
            assert runner.cache_key(cell) == expected
