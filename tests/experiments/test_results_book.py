"""The results book: structure, determinism, and its markdown building blocks.

The committed ``docs/RESULTS.md`` is a generated artifact that CI regenerates
and diffs on every build, so the generator itself must be deterministic and
structurally stable.  These tests pin the contract on a miniature
configuration (seconds, not the CI-sized book): every RQ section renders, two
runs produce byte-identical documents, wall-clock measurement columns stay
out, and the GFM rendering underneath cannot be broken by cell content.
"""

import pytest

from repro.experiments import ResultsConfig, generate_results, write_results
from repro.metrics import ComparisonTable

TINY = ResultsConfig(
    n_functions=8, population=12, days=1.5, training_days=1.0, seeds=(3,)
)


@pytest.fixture(scope="module")
def tiny_book():
    return generate_results(TINY)


class TestResultsBook:
    def test_contains_every_rq_section(self, tiny_book):
        for number in range(1, 7):
            assert f"## RQ{number} " in tiny_book, f"RQ{number} section missing"

    def test_is_deterministic(self, tiny_book):
        assert generate_results(TINY) == tiny_book

    def test_declares_itself_generated(self, tiny_book):
        assert "do not edit by hand" in tiny_book
        # The book embeds the exact command that reproduces it.
        assert "results" in tiny_book and "--functions 8" in tiny_book

    def test_excludes_wall_clock_columns(self, tiny_book):
        """Scheduler-overhead measurements vary run to run; a diffable book
        must not carry them."""
        assert "overhead_s_per_min" not in tiny_book
        assert "overhead_comparison" not in tiny_book

    def test_mb_mode_reports_measured_memory(self, tiny_book):
        assert TINY.memory_mode == "mb"
        assert "wmt_mb_min" in tiny_book
        assert "emcr_mb_pct" in tiny_book

    def test_write_results_creates_parents(self, tmp_path):
        target = tmp_path / "nested" / "book.md"
        write_results(target, TINY)
        assert target.read_text() == generate_results(TINY)

    def test_config_rejects_bad_memory_mode(self):
        with pytest.raises(ValueError):
            generate_results(ResultsConfig(memory_mode="bogus"))


class TestMarkdownRendering:
    def build(self):
        table = ComparisonTable(
            title="demo", columns=("name", "value", "note")
        )
        table.add_row(name="a|b", value=1.25, note="plain")
        table.add_row(name="c", value=2, note=None)
        return table

    def test_gfm_shape_and_alignment(self):
        lines = self.build().to_markdown(float_format="{:.2f}").splitlines()
        assert lines[0] == "**demo**"
        assert lines[2] == "| name | value | note |"
        # Numeric columns right-align; text columns do not.
        assert lines[3] == "|---|---:|---|"

    def test_pipes_in_cells_are_escaped(self):
        rendered = self.build().to_markdown()
        assert "a\\|b" in rendered

    def test_floats_use_the_requested_format(self):
        rendered = self.build().to_markdown(float_format="{:.1f}")
        assert "| 1.2 |" in rendered

    def test_drop_columns_removes_named_columns(self):
        table = self.build().drop_columns("note", "not-a-column")
        assert tuple(table.columns) == ("name", "value")
        assert all("note" not in row for row in table.rows)
        # The original is untouched.
        assert "note" in self.build().columns
