"""Tests for the parallel experiment subsystem: specs, caching, determinism."""

import pickle

import pytest

from repro.core import SpesConfig
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.parallel import (
    POLICY_REGISTRY,
    ParallelRunner,
    PolicySpec,
    ResultCache,
    derive_cell_seed,
    register_policy,
)
from repro.experiments.suite import ExperimentSuite
from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace


@pytest.fixture(scope="module")
def split():
    profile = GeneratorProfile(
        n_functions=30, duration_days=2.0, unseen_window_days=0.5, seed=13
    )
    return split_trace(AzureTraceGenerator(profile).generate(), training_days=1.5)


@pytest.fixture(scope="module")
def suite_specs():
    return {
        "no-keepalive": PolicySpec.of("no-keepalive"),
        "fixed-5min": PolicySpec.of("fixed-keepalive", keep_alive_minutes=5),
        "hybrid-function": PolicySpec.of("hybrid-function"),
    }


class TestPolicySpec:
    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            PolicySpec.of("definitely-not-registered")

    def test_build_applies_params(self):
        policy = PolicySpec.of("fixed-keepalive", keep_alive_minutes=7).build()
        assert policy.keep_alive_minutes == 7

    def test_spes_spec_carries_config(self):
        config = SpesConfig(theta_prewarm=4)
        policy = PolicySpec.of("spes", config=config).build()
        assert policy.config.theta_prewarm == 4

    def test_specs_are_picklable(self):
        spec = PolicySpec.of("spes", config=SpesConfig())
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_register_policy_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_policy("spes", POLICY_REGISTRY["spes"])


class TestRegistryCoverage:
    def test_every_dict_baseline_has_an_indexed_twin(self):
        """No registered policy *needs* the DictPolicyAdapter anymore.

        Every dict-API registry entry must have an ``<name>-indexed`` twin
        (LCS was the last holdout), so sweeps can run entirely on the
        index-native contract.
        """
        from repro.experiments.parallel import POLICY_REGISTRY

        dict_entries = {
            name
            for name in POLICY_REGISTRY
            if not name.endswith("-indexed")
            and name not in ("no-keepalive", "always-warm", "latency-keepalive")
        }
        missing = {
            name for name in dict_entries if f"{name}-indexed" not in POLICY_REGISTRY
        }
        assert not missing, f"dict-only registry entries remain: {sorted(missing)}"

    def test_indexed_twins_are_not_dict_adapted(self):
        from repro.experiments.parallel import POLICY_REGISTRY
        from repro.simulation import VectorizedPolicy

        for name, factory in POLICY_REGISTRY.items():
            if name.endswith("-indexed") or name == "latency-keepalive":
                policy = factory() if name != "faascache-indexed" else factory(capacity=4)
                assert isinstance(policy, VectorizedPolicy), name


class TestCellSeeds:
    def test_seeds_are_deterministic(self):
        spec = PolicySpec.of("no-keepalive")
        assert derive_cell_seed(1, spec) == derive_cell_seed(1, spec)

    def test_seeds_differ_per_base_seed_and_spec(self):
        spec_a = PolicySpec.of("no-keepalive")
        spec_b = PolicySpec.of("always-warm")
        seeds = {
            derive_cell_seed(1, spec_a),
            derive_cell_seed(2, spec_a),
            derive_cell_seed(1, spec_b),
        }
        assert len(seeds) == 3

    def test_seeds_fit_legacy_numpy_range(self):
        seed = derive_cell_seed(2024, PolicySpec.of("spes"))
        assert 0 <= seed < 2**32


class TestParallelRunner:
    def test_serial_and_parallel_results_identical(self, split, suite_specs):
        serial = ParallelRunner({"w": split}, workers=0, warmup_minutes=60)
        parallel = ParallelRunner({"w": split}, workers=2, warmup_minutes=60)
        serial_results = serial.run_policies(suite_specs, trace_key="w", base_seed=3)
        parallel_results = parallel.run_policies(suite_specs, trace_key="w", base_seed=3)
        assert list(serial_results) == list(parallel_results) == list(suite_specs)
        for name in suite_specs:
            assert (
                serial_results[name].deterministic_fingerprint()
                == parallel_results[name].deterministic_fingerprint()
            ), name

    def test_cache_miss_then_hit(self, split, suite_specs, tmp_path):
        first = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=60)
        first_results = first.run_policies(suite_specs, trace_key="w")
        assert first.cache.hits == 0
        assert first.cache.misses == len(suite_specs)

        second = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=60)
        second_results = second.run_policies(suite_specs, trace_key="w")
        assert second.cache.hits == len(suite_specs)
        assert second.cache.misses == 0
        for name in suite_specs:
            assert (
                first_results[name].deterministic_fingerprint()
                == second_results[name].deterministic_fingerprint()
            )

    def test_cache_keys_depend_on_simulator_settings(self, split, suite_specs, tmp_path):
        spec = suite_specs["no-keepalive"]
        short = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=30)
        long = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=90)
        key_short = short.cache_key(short.cell("c", spec, "w"))
        key_long = long.cache_key(long.cell("c", spec, "w"))
        assert key_short != key_long

    def test_cache_keys_depend_on_streaming_and_engine(self, split, suite_specs, tmp_path):
        spec = suite_specs["no-keepalive"]
        keys = set()
        for engine, streaming in (
            ("vectorized", False),
            ("vectorized", True),
            ("event", False),
            ("event-feedback", False),
            ("event-feedback", True),
        ):
            runner = ParallelRunner(
                {"w": split}, cache_dir=tmp_path, warmup_minutes=30,
                engine=engine, streaming=streaming,
            )
            keys.add(runner.cache_key(runner.cell("c", spec, "w")))
        assert len(keys) == 5

    def test_cache_keys_depend_on_shards_and_shard_placement(
        self, split, suite_specs, tmp_path
    ):
        """Sharded and unsharded runs must never share a cache entry.

        Latency observations draw from per-shard jitter streams and a
        fallback run is not the run that was asked for, so the key covers
        both the shard count and the partition strategy.
        """
        spec = suite_specs["no-keepalive"]
        keys = set()
        for shards, shard_placement in (
            (0, "hash"),
            (3, "hash"),
            (3, "least-loaded"),
            (4, "hash"),
        ):
            runner = ParallelRunner(
                {"w": split},
                cache_dir=tmp_path,
                warmup_minutes=30,
                shards=shards,
                shard_placement=shard_placement,
            )
            keys.add(runner.cache_key(runner.cell("c", spec, "w")))
        assert len(keys) == 4

    def test_cache_keys_depend_on_memory_mode(self, split, suite_specs, tmp_path):
        """MB-mode cells carry extra fields, so they must never hit a
        unit-mode entry — while explicit unit mode keeps the historical key
        (pre-MB caches stay warm)."""
        spec = suite_specs["no-keepalive"]
        legacy = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=30)
        unit = ParallelRunner(
            {"w": split}, cache_dir=tmp_path, warmup_minutes=30, memory_mode="unit"
        )
        mb = ParallelRunner(
            {"w": split}, cache_dir=tmp_path, warmup_minutes=30, memory_mode="mb"
        )
        legacy_key = legacy.cache_key(legacy.cell("c", spec, "w"))
        assert unit.cache_key(unit.cell("c", spec, "w")) == legacy_key
        assert mb.cache_key(mb.cell("c", spec, "w")) != legacy_key

    def test_sharded_pool_serial_and_unsharded_agree(self, split):
        """One fingerprint across unsharded, serial-sharded and pool-sharded."""
        specs = {"fixed-5min": PolicySpec.of("fixed-keepalive", keep_alive_minutes=5)}
        fingerprints = {
            label: runner.run_policies(specs, trace_key="w", base_seed=3)[
                "fixed-5min"
            ].deterministic_fingerprint()
            for label, runner in {
                "unsharded": ParallelRunner({"w": split}, warmup_minutes=60),
                "serial": ParallelRunner({"w": split}, warmup_minutes=60, shards=3),
                "pool": ParallelRunner(
                    {"w": split}, warmup_minutes=60, shards=3, workers=2
                ),
            }.items()
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_sharded_runner_falls_back_for_unsafe_policy(self, split):
        from repro.simulation import ShardFallbackWarning

        runner = ParallelRunner({"w": split}, warmup_minutes=60, shards=2)
        cell = runner.cell("c", PolicySpec.of("spes"), "w")
        with pytest.warns(ShardFallbackWarning, match="shard_safe"):
            results = runner.run_cells([cell])
        assert results["c"].total_invocations > 0

    def test_streaming_runner_withholds_training(self, split):
        from repro.experiments.parallel import PolicySpec

        spec = PolicySpec.of("hybrid-function-indexed")
        trained = ParallelRunner({"w": split}, warmup_minutes=60)
        streaming = ParallelRunner({"w": split}, warmup_minutes=60, streaming=True)
        trained_result = trained.run_cells([trained.cell("c", spec, "w")])["c"]
        streaming_result = streaming.run_cells([streaming.cell("c", spec, "w")])["c"]
        assert (
            trained_result.deterministic_fingerprint()
            != streaming_result.deterministic_fingerprint()
        )

    def test_corrupt_cache_entry_is_a_miss(self, split, suite_specs, tmp_path):
        runner = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=60)
        cell = runner.cell("c", suite_specs["no-keepalive"], "w")
        runner.run_cells([cell])
        (tmp_path / f"{runner.cache_key(cell)}.pkl").write_bytes(b"not a pickle")
        rerun = ParallelRunner({"w": split}, cache_dir=tmp_path, warmup_minutes=60)
        results = rerun.run_cells([cell])
        assert rerun.cache.misses == 1
        assert results["c"].total_invocations > 0

    def test_duplicate_cell_names_rejected(self, split, suite_specs):
        runner = ParallelRunner({"w": split}, warmup_minutes=60)
        cell = runner.cell("same", suite_specs["no-keepalive"], "w")
        with pytest.raises(ValueError):
            runner.run_cells([cell, cell])

    def test_unknown_trace_key_rejected(self, split, suite_specs):
        runner = ParallelRunner({"w": split})
        with pytest.raises(KeyError):
            runner.cell("c", suite_specs["no-keepalive"], "nope")


class TestResultCache:
    def test_get_on_empty_directory_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("missing") is None
        assert cache.misses == 1


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        n_functions=30, seed=17, duration_days=2.0, training_days=1.5, warmup_minutes=60
    )


class TestExperimentRunnerParallel:
    def test_parallel_run_all_matches_serial(self, tiny_config):
        serial = ExperimentRunner(tiny_config).run_all()
        parallel = ExperimentRunner(tiny_config, workers=2).run_all()
        assert set(serial) == set(parallel)
        for name, result in serial.items():
            assert (
                result.deterministic_fingerprint()
                == parallel[name].deterministic_fingerprint()
            ), name

    def test_run_spes_variants_batch_is_memoized(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        variants = {"variant-a": SpesConfig(theta_prewarm=1)}
        first = runner.run_spes_variants(variants)
        second = runner.run_spes_variants(variants)
        assert first["variant-a"] is second["variant-a"]

    def test_run_specs_rejects_name_reuse_with_different_spec(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        runner.run_specs({"x": PolicySpec.of("fixed-keepalive", keep_alive_minutes=10)})
        with pytest.raises(ValueError):
            runner.run_specs({"x": PolicySpec.of("fixed-keepalive", keep_alive_minutes=60)})

    def test_baseline_factories_match_specs(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        factories = runner.baseline_factories()
        assert set(factories) == set(runner.baseline_specs())
        assert factories["fixed-10min"]().keep_alive_minutes == 10

    def test_runner_disk_cache(self, tiny_config, tmp_path):
        first = ExperimentRunner(tiny_config, cache_dir=tmp_path)
        first.run_spes_variants({"v": SpesConfig(theta_prewarm=1)})
        second = ExperimentRunner(tiny_config, cache_dir=tmp_path)
        second.run_spes_variants({"v": SpesConfig(theta_prewarm=1)})
        assert second.parallel_runner().cache.hits == 1


class TestExperimentSuite:
    def test_serial_and_parallel_suite_identical(self, tiny_config):
        serial = ExperimentSuite(
            tiny_config, seeds=[21], policies=("spes", "fixed-10min", "faascache")
        ).run()
        parallel = ExperimentSuite(
            tiny_config,
            seeds=[21],
            policies=("spes", "fixed-10min", "faascache"),
            workers=2,
        ).run()
        for name, result in serial.results[21].items():
            assert (
                result.deterministic_fingerprint()
                == parallel.results[21][name].deterministic_fingerprint()
            ), name

    def test_policy_order_preserved(self, tiny_config):
        policies = ("spes", "defuse", "fixed-10min")
        outcome = ExperimentSuite(tiny_config, seeds=[21], policies=policies).run()
        assert tuple(outcome.results[21]) == policies

    def test_faascache_requires_spes(self, tiny_config):
        with pytest.raises(ValueError):
            ExperimentSuite(tiny_config, policies=("faascache",))

    def test_duplicate_seeds_deduplicated(self, tiny_config):
        suite = ExperimentSuite(tiny_config, seeds=[21, 21, 22])
        assert suite.seeds == (21, 22)

    def test_tables_render(self, tiny_config):
        outcome = ExperimentSuite(
            tiny_config, seeds=[21, 22], policies=("spes", "fixed-10min")
        ).run()
        assert "seed 21" in outcome.seed_table(21).render()
        aggregate = outcome.aggregate_table()
        assert {row["policy"] for row in aggregate.rows} == {"spes", "fixed-10min"}
