"""End-to-end integration tests: full pipeline on a small synthetic workload.

These tests assert the *comparative shape* of the paper's headline results on
a small (fast) workload: SPES should beat the function-grained baselines on
the 75th-percentile cold-start rate while using the least (or close to the
least) memory.  Exact magnitudes are workload-dependent and are exercised by
the benchmark harness instead.
"""

import pytest

from repro.core import SpesConfig, SpesPolicy
from repro.core.categories import FunctionCategory
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.simulation import simulate_policy


@pytest.fixture(scope="module")
def runner():
    config = ExperimentConfig(
        n_functions=150,
        seed=2024,
        duration_days=6.0,
        training_days=5.0,
        warmup_minutes=720,
    )
    return ExperimentRunner(config)


@pytest.fixture(scope="module")
def results(runner):
    return runner.run_all()


class TestHeadlineShape:
    def test_spes_beats_fixed_keepalive_on_q3_csr(self, results):
        assert results["spes"].q3_cold_start_rate < results["fixed-10min"].q3_cold_start_rate

    def test_spes_competitive_with_function_grained_baselines(self, results):
        spes_q3 = results["spes"].q3_cold_start_rate
        assert spes_q3 <= results["hybrid-function"].q3_cold_start_rate * 1.1
        assert spes_q3 <= results["faascache"].q3_cold_start_rate * 1.1

    def test_spes_memory_close_to_fixed_keepalive(self, results):
        spes_memory = results["spes"].average_memory_usage
        fixed_memory = results["fixed-10min"].average_memory_usage
        assert spes_memory <= fixed_memory * 1.3

    def test_spes_wmt_among_the_lowest(self, results):
        spes_wmt = results["spes"].total_wasted_memory_time
        others = [
            result.total_wasted_memory_time
            for name, result in results.items()
            if name != "spes"
        ]
        # SPES must not waste more than any baseline by a noticeable margin.
        assert spes_wmt <= min(others) * 1.2

    def test_hybrid_application_uses_much_more_memory_than_spes(self, results):
        assert (
            results["hybrid-application"].average_memory_usage
            > results["spes"].average_memory_usage
        )

    def test_every_policy_produces_valid_metrics(self, results):
        for result in results.values():
            assert 0.0 <= result.overall_cold_start_rate <= 1.0
            assert 0.0 <= result.emcr <= 1.0
            assert result.total_wasted_memory_time >= 0


class TestCategorizationCoverage:
    def test_most_functions_categorized(self, runner):
        runner.run_spes()
        assignments = runner.spes_policy().category_assignments()
        unknown = sum(
            1 for category in assignments.values() if category is FunctionCategory.UNKNOWN
        )
        assert unknown / len(assignments) < 0.25

    def test_multiple_categories_present(self, runner):
        runner.run_spes()
        categories = set(runner.spes_policy().category_assignments().values())
        assert len(categories) >= 4


class TestAblationShape:
    def test_disabling_correlation_does_not_improve_cold_starts(self, runner):
        full = runner.run_spes()
        without = runner.run_spes_variant(
            runner.config.spes_config.replace(
                enable_correlation=False, enable_online_correlation=False
            ),
            cache_key="integration-no-corr",
        )
        assert full.q3_cold_start_rate <= without.q3_cold_start_rate + 0.05


class TestTradeoffShape:
    def test_larger_prewarm_window_trades_memory_for_cold_starts(self, runner):
        small = runner.run_spes_variant(
            runner.config.spes_config.replace(theta_prewarm=1), cache_key="integration-pre1"
        )
        large = runner.run_spes_variant(
            runner.config.spes_config.replace(theta_prewarm=10), cache_key="integration-pre10"
        )
        assert large.average_memory_usage >= small.average_memory_usage
        assert large.q3_cold_start_rate <= small.q3_cold_start_rate + 0.05


class TestSmallScaleSanity:
    def test_spes_runs_without_training_data(self, small_split):
        result = simulate_policy(
            SpesPolicy(SpesConfig()), small_split.simulation, None, warmup_minutes=0
        )
        assert result.total_invocations > 0
