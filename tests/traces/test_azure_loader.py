"""Tests for the real Azure-trace CSV loader."""

import numpy as np
import pytest

from repro.traces import load_azure_invocation_csv
from repro.traces.azure_loader import parse_trigger
from repro.traces.schema import MINUTES_PER_DAY, TriggerType


def write_daily_csv(path, rows):
    """Write a miniature daily invocation CSV in the Azure schema."""
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(i) for i in range(1, MINUTES_PER_DAY + 1)
    ]
    lines = [",".join(header)]
    for owner, app, func, trigger, minute_counts in rows:
        counts = ["0"] * MINUTES_PER_DAY
        for minute, value in minute_counts.items():
            counts[minute] = str(value)
        lines.append(",".join([owner, app, func, trigger] + counts))
    path.write_text("\n".join(lines) + "\n")


class TestParseTrigger:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("http", TriggerType.HTTP),
            ("HTTP", TriggerType.HTTP),
            ("timer", TriggerType.TIMER),
            ("queue", TriggerType.QUEUE),
            ("blob", TriggerType.STORAGE),
            ("eventhub", TriggerType.EVENT),
            ("durable", TriggerType.ORCHESTRATION),
            ("someNewTrigger", TriggerType.OTHERS),
        ],
    )
    def test_mapping(self, raw, expected):
        assert parse_trigger(raw) is expected


class TestLoader:
    def test_single_day(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [
                ("o1", "a1", "f1", "http", {0: 3, 100: 1}),
                ("o1", "a1", "f2", "timer", {50: 1}),
            ],
        )
        trace = load_azure_invocation_csv([csv_path])
        assert len(trace) == 2
        assert trace.duration_minutes == MINUTES_PER_DAY
        assert trace.total_invocations("o1:a1:f1") == 4
        assert trace.record("o1:a1:f2").trigger is TriggerType.TIMER

    def test_multiple_days_concatenated(self, tmp_path):
        day1 = tmp_path / "d01.csv"
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f", "http", {10: 1})])
        write_daily_csv(day2, [("o", "a", "f", "http", {20: 2})])
        trace = load_azure_invocation_csv([day1, day2])
        assert trace.duration_minutes == 2 * MINUTES_PER_DAY
        series = trace.series("o:a:f")
        assert series[10] == 1
        assert series[MINUTES_PER_DAY + 20] == 2

    def test_function_missing_on_one_day(self, tmp_path):
        day1 = tmp_path / "d01.csv"
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f1", "http", {0: 1})])
        write_daily_csv(day2, [("o", "a", "f2", "queue", {0: 1})])
        trace = load_azure_invocation_csv([day1, day2])
        assert trace.total_invocations("o:a:f1") == 1
        assert trace.total_invocations("o:a:f2") == 1

    def test_max_functions_cap(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [("o", "a", f"f{i}", "http", {i: 1}) for i in range(5)],
        )
        trace = load_azure_invocation_csv([csv_path], max_functions=2)
        assert len(trace) == 2

    def test_app_and_owner_grouping(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [
                ("o1", "a1", "f1", "http", {0: 1}),
                ("o1", "a1", "f2", "http", {1: 1}),
                ("o2", "a2", "f3", "timer", {2: 1}),
            ],
        )
        trace = load_azure_invocation_csv([csv_path])
        assert len(trace.functions_by_app()["o1:a1"]) == 2
        assert len(trace.functions_by_owner()["o2"]) == 1

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError):
            load_azure_invocation_csv([])

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "d01.csv"
        empty.write_text("HashOwner,HashApp,HashFunction,Trigger," + ",".join(map(str, range(1, 1441))) + "\n")
        with pytest.raises(ValueError):
            load_azure_invocation_csv([empty])
