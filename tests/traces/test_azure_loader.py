"""Tests for the real Azure-trace CSV loader."""

import pytest

from repro.traces import load_azure_invocation_csv
from repro.traces.azure_loader import parse_trigger
from repro.traces.schema import MINUTES_PER_DAY, TriggerType


def write_daily_csv(path, rows):
    """Write a miniature daily invocation CSV in the Azure schema."""
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(i) for i in range(1, MINUTES_PER_DAY + 1)
    ]
    lines = [",".join(header)]
    for owner, app, func, trigger, minute_counts in rows:
        counts = ["0"] * MINUTES_PER_DAY
        for minute, value in minute_counts.items():
            counts[minute] = str(value)
        lines.append(",".join([owner, app, func, trigger] + counts))
    path.write_text("\n".join(lines) + "\n")


class TestParseTrigger:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("http", TriggerType.HTTP),
            ("HTTP", TriggerType.HTTP),
            ("timer", TriggerType.TIMER),
            ("queue", TriggerType.QUEUE),
            ("blob", TriggerType.STORAGE),
            ("eventhub", TriggerType.EVENT),
            ("durable", TriggerType.ORCHESTRATION),
            ("someNewTrigger", TriggerType.OTHERS),
        ],
    )
    def test_mapping(self, raw, expected):
        assert parse_trigger(raw) is expected


class TestLoader:
    def test_single_day(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [
                ("o1", "a1", "f1", "http", {0: 3, 100: 1}),
                ("o1", "a1", "f2", "timer", {50: 1}),
            ],
        )
        trace = load_azure_invocation_csv([csv_path])
        assert len(trace) == 2
        assert trace.duration_minutes == MINUTES_PER_DAY
        assert trace.total_invocations("o1:a1:f1") == 4
        assert trace.record("o1:a1:f2").trigger is TriggerType.TIMER

    def test_multiple_days_concatenated(self, tmp_path):
        day1 = tmp_path / "d01.csv"
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f", "http", {10: 1})])
        write_daily_csv(day2, [("o", "a", "f", "http", {20: 2})])
        trace = load_azure_invocation_csv([day1, day2])
        assert trace.duration_minutes == 2 * MINUTES_PER_DAY
        series = trace.series("o:a:f")
        assert series[10] == 1
        assert series[MINUTES_PER_DAY + 20] == 2

    def test_function_missing_on_one_day(self, tmp_path):
        day1 = tmp_path / "d01.csv"
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f1", "http", {0: 1})])
        write_daily_csv(day2, [("o", "a", "f2", "queue", {0: 1})])
        trace = load_azure_invocation_csv([day1, day2])
        assert trace.total_invocations("o:a:f1") == 1
        assert trace.total_invocations("o:a:f2") == 1

    def test_max_functions_cap(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [("o", "a", f"f{i}", "http", {i: 1}) for i in range(5)],
        )
        trace = load_azure_invocation_csv([csv_path], max_functions=2)
        assert len(trace) == 2

    def test_app_and_owner_grouping(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [
                ("o1", "a1", "f1", "http", {0: 1}),
                ("o1", "a1", "f2", "http", {1: 1}),
                ("o2", "a2", "f3", "timer", {2: 1}),
            ],
        )
        trace = load_azure_invocation_csv([csv_path])
        assert len(trace.functions_by_app()["o1:a1"]) == 2
        assert len(trace.functions_by_owner()["o2"]) == 1

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError):
            load_azure_invocation_csv([])

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "d01.csv"
        empty.write_text("HashOwner,HashApp,HashFunction,Trigger," + ",".join(map(str, range(1, 1441))) + "\n")
        with pytest.raises(ValueError):
            load_azure_invocation_csv([empty])


class TestParsingFallbacks:
    """The public trace is messy; parsing degrades gracefully, never silently wrong."""

    def test_unknown_trigger_label_falls_back_to_others(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(csv_path, [("o", "a", "f", "cosmosDBTrigger", {0: 1})])
        trace = load_azure_invocation_csv([csv_path])
        assert trace.record("o:a:f").trigger is TriggerType.OTHERS

    def test_float_formatted_counts_are_parsed(self, tmp_path):
        # Some exports render counts as floats ("3.0"); the loader truncates
        # through float() rather than crashing on int().
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(csv_path, [("o", "a", "f", "http", {10: "3.0", 11: "2"})])
        trace = load_azure_invocation_csv([csv_path])
        series = trace.series("o:a:f")
        assert series[10] == 3
        assert series[11] == 2

    def test_short_malformed_rows_are_skipped(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(csv_path, [("o", "a", "f", "http", {0: 1})])
        with csv_path.open("a") as handle:
            handle.write("truncated,row\n")
        trace = load_azure_invocation_csv([csv_path])
        assert len(trace) == 1

    def test_duplicate_rows_for_one_function_are_summed(self, tmp_path):
        csv_path = tmp_path / "d01.csv"
        write_daily_csv(
            csv_path,
            [
                ("o", "a", "f", "http", {5: 1}),
                ("o", "a", "f", "http", {5: 2, 6: 1}),
            ],
        )
        trace = load_azure_invocation_csv([csv_path])
        series = trace.series("o:a:f")
        assert series[5] == 3
        assert series[6] == 1

    def test_conflicting_trigger_across_days_keeps_the_first(self, tmp_path):
        day1 = tmp_path / "d01.csv"
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f", "timer", {0: 1})])
        write_daily_csv(day2, [("o", "a", "f", "http", {0: 1})])
        trace = load_azure_invocation_csv([day1, day2])
        assert trace.record("o:a:f").trigger is TriggerType.TIMER
        assert trace.total_invocations("o:a:f") == 2


class TestMultiDayStitching:
    def test_three_days_stitch_into_one_timeline(self, tmp_path):
        paths = []
        for day in range(3):
            path = tmp_path / f"d{day:02d}.csv"
            write_daily_csv(path, [("o", "a", "f", "http", {day * 7: day + 1})])
            paths.append(path)
        trace = load_azure_invocation_csv(paths)
        assert trace.duration_minutes == 3 * MINUTES_PER_DAY
        series = trace.series("o:a:f")
        for day in range(3):
            assert series[day * MINUTES_PER_DAY + day * 7] == day + 1
        assert trace.total_invocations() == 6

    def test_empty_daily_file_contributes_a_silent_day(self, tmp_path):
        # A day whose CSV holds only the header (an outage, a partial
        # download) must not shift later days or drop functions.
        day1 = tmp_path / "d01.csv"
        empty = tmp_path / "d02.csv"
        day3 = tmp_path / "d03.csv"
        write_daily_csv(day1, [("o", "a", "f", "http", {10: 1})])
        write_daily_csv(empty, [])
        write_daily_csv(day3, [("o", "a", "f", "http", {20: 2})])
        trace = load_azure_invocation_csv([day1, empty, day3])
        assert trace.duration_minutes == 3 * MINUTES_PER_DAY
        series = trace.series("o:a:f")
        assert series[10] == 1
        assert series[MINUTES_PER_DAY : 2 * MINUTES_PER_DAY].sum() == 0
        assert series[2 * MINUTES_PER_DAY + 20] == 2

    def test_headerless_day_is_treated_as_empty(self, tmp_path):
        day1 = tmp_path / "d01.csv"
        blank = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f", "http", {0: 1})])
        blank.write_text("")
        trace = load_azure_invocation_csv([day1, blank])
        assert trace.duration_minutes == 2 * MINUTES_PER_DAY
        assert trace.total_invocations("o:a:f") == 1

    def test_missing_middle_day_file_keeps_minute_alignment(self, tmp_path):
        # Regression: d01 + d03 with no d02 file at all used to stitch d03's
        # counts one day early.  Day-numbered names now pin each file to its
        # true offset, with the gap contributing a silent day.
        day1 = tmp_path / "invocations_per_function_md.anon.d01.csv"
        day3 = tmp_path / "invocations_per_function_md.anon.d03.csv"
        write_daily_csv(day1, [("o", "a", "f", "http", {10: 1})])
        write_daily_csv(day3, [("o", "a", "f", "http", {20: 2})])
        trace = load_azure_invocation_csv([day1, day3])
        assert trace.duration_minutes == 3 * MINUTES_PER_DAY
        series = trace.series("o:a:f")
        assert series[10] == 1
        assert series[MINUTES_PER_DAY : 2 * MINUTES_PER_DAY].sum() == 0
        assert series[2 * MINUTES_PER_DAY + 20] == 2

    def test_overlapping_day_files_are_rejected(self, tmp_path):
        from repro.traces.azure2019 import AzureIngestError

        first = tmp_path / "a" / "d02.csv"
        second = tmp_path / "b" / "d02.csv"
        first.parent.mkdir()
        second.parent.mkdir()
        write_daily_csv(first, [("o", "a", "f", "http", {0: 1})])
        write_daily_csv(second, [("o", "a", "f", "http", {1: 1})])
        with pytest.raises(AzureIngestError, match="overlapping day files"):
            load_azure_invocation_csv([first, second])

    def test_out_of_order_day_files_are_rejected(self, tmp_path):
        from repro.traces.azure2019 import AzureIngestError

        day1 = tmp_path / "d01.csv"
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day1, [("o", "a", "f", "http", {0: 1})])
        write_daily_csv(day2, [("o", "a", "f", "http", {1: 1})])
        with pytest.raises(AzureIngestError, match="chronological"):
            load_azure_invocation_csv([day2, day1])

    def test_unnumbered_names_fall_back_to_positional_stitching(self, tmp_path):
        first = tmp_path / "monday.csv"
        second = tmp_path / "tuesday.csv"
        write_daily_csv(first, [("o", "a", "f", "http", {10: 1})])
        write_daily_csv(second, [("o", "a", "f", "http", {20: 2})])
        trace = load_azure_invocation_csv([first, second])
        assert trace.duration_minutes == 2 * MINUTES_PER_DAY
        series = trace.series("o:a:f")
        assert series[10] == 1
        assert series[MINUTES_PER_DAY + 20] == 2

    def test_short_day_rows_are_padded_not_wrapped(self, tmp_path):
        # A daily file with fewer minute columns must never bleed counts into
        # the following day's window.
        short = tmp_path / "d01.csv"
        header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
            str(i) for i in range(1, 121)
        ]
        counts = ["0"] * 120
        counts[100] = "4"
        short.write_text(
            ",".join(header) + "\n" + ",".join(["o", "a", "f", "http"] + counts) + "\n"
        )
        day2 = tmp_path / "d02.csv"
        write_daily_csv(day2, [("o", "a", "f", "http", {30: 1})])
        trace = load_azure_invocation_csv([short, day2])
        series = trace.series("o:a:f")
        assert series[100] == 4
        assert series[MINUTES_PER_DAY + 30] == 1
        assert trace.total_invocations("o:a:f") == 5
