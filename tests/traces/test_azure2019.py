"""Tests for the streaming Azure 2019 ingestion pipeline.

Three layers, mirroring the module:

* row/day parsing and the malformed-input contract (fail loudly or degrade
  in a documented way, never guess);
* the two-pass ingestion itself, pinned by hypothesis properties against a
  brute-force dense reconstruction of the same CSVs;
* the on-disk ``.npz`` cache (replay, invalidation, corruption recovery)
  and the deterministic fixture generator that keeps all of it hermetic.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    Azure2019Config,
    Azure2019Dataset,
    AzureIngestError,
    SparseTrace,
    Trace,
    load_azure2019,
    load_azure_invocation_csv,
    split_trace,
    write_azure2019_fixture,
)
from repro.traces.archetypes import TRIGGER_DURATION_PROFILES, duration_profile_for
from repro.traces.azure2019 import (
    DURATIONS_TEMPLATE,
    INVOCATIONS_TEMPLATE,
    MEMORY_PERCENTILES,
    MEMORY_TEMPLATE,
    day_number,
    iter_invocation_rows,
)
from repro.traces.schema import MINUTES_PER_DAY, TriggerType

INVOCATION_HEADER = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
    str(minute) for minute in range(1, MINUTES_PER_DAY + 1)
]


def write_day(root, day, rows):
    """Write one daily invocation CSV from ``(owner, app, func, trigger,
    {minute: count})`` rows, in the exact dataset schema."""
    lines = [",".join(INVOCATION_HEADER)]
    for owner, app, func, trigger, minute_counts in rows:
        counts = ["0"] * MINUTES_PER_DAY
        for minute, value in minute_counts.items():
            counts[minute] = str(value)
        lines.append(",".join([owner, app, func, trigger] + counts))
    path = root / INVOCATIONS_TEMPLATE.format(day=day)
    path.write_text("\n".join(lines) + "\n")
    return path


def write_durations(root, day, rows):
    """Write one duration-percentile CSV from ``(owner, app, func, average,
    count)`` rows."""
    header = [
        "HashOwner", "HashApp", "HashFunction", "Average", "Count",
        "Minimum", "Maximum",
        "percentile_Average_0", "percentile_Average_1",
        "percentile_Average_25", "percentile_Average_50",
        "percentile_Average_75", "percentile_Average_99",
        "percentile_Average_100",
    ]
    lines = [",".join(header)]
    for owner, app, func, average, count in rows:
        lines.append(
            ",".join(
                [owner, app, func, str(average), str(count)]
                + [str(average)] * 9
            )
        )
    path = root / DURATIONS_TEMPLATE.format(day=day)
    path.write_text("\n".join(lines) + "\n")
    return path


def write_memory(root, day, rows):
    """Write one app-memory CSV from ``(owner, app, count, average)`` rows.

    Percentile columns are written as ``average * percentile`` so tests can
    tell which column a join actually read."""
    header = ["HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb"] + [
        f"AverageAllocatedMb_pct{p}" for p in MEMORY_PERCENTILES
    ]
    lines = [",".join(header)]
    for owner, app, count, average in rows:
        lines.append(
            ",".join(
                [owner, app, str(count), str(average)]
                + [str(average * p) for p in MEMORY_PERCENTILES]
            )
        )
    path = root / MEMORY_TEMPLATE.format(day=day)
    path.write_text("\n".join(lines) + "\n")
    return path


# --------------------------------------------------------------------------- #
# Row reader and day-number parsing
# --------------------------------------------------------------------------- #
class TestRowReader:
    def test_sparse_rows_carry_only_nonzero_minutes(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {3: 2, 100: 5})])
        rows = list(
            iter_invocation_rows(tmp_path / INVOCATIONS_TEMPLATE.format(day=1))
        )
        assert len(rows) == 1
        _, owner, app, func, trigger, minutes, counts = rows[0]
        assert (owner, app, func, trigger) == ("o", "a", "f", "http")
        np.testing.assert_array_equal(minutes, [3, 100])
        np.testing.assert_array_equal(counts, [2, 5])

    def test_truncated_row_raises_with_file_and_line(self, tmp_path):
        path = write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        with path.open("a") as handle:
            handle.write("truncated,row\n")
        with pytest.raises(AzureIngestError, match=rf"{path.name}:3"):
            list(iter_invocation_rows(path))

    def test_truncated_row_skipped_in_skip_mode(self, tmp_path):
        path = write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        with path.open("a") as handle:
            handle.write("truncated,row\n")
        assert len(list(iter_invocation_rows(path, on_malformed="skip"))) == 1

    def test_garbled_count_always_raises(self, tmp_path):
        path = write_day(tmp_path, 1, [("o", "a", "f", "http", {7: "lots"})])
        for mode in ("error", "skip"):
            with pytest.raises(AzureIngestError, match="invalid invocation count"):
                list(iter_invocation_rows(path, on_malformed=mode))

    def test_negative_count_always_raises(self, tmp_path):
        path = write_day(tmp_path, 1, [("o", "a", "f", "http", {7: -1})])
        with pytest.raises(AzureIngestError, match="negative"):
            list(iter_invocation_rows(path))

    def test_headerless_file_yields_nothing(self, tmp_path):
        path = tmp_path / INVOCATIONS_TEMPLATE.format(day=1)
        path.write_text("")
        assert list(iter_invocation_rows(path)) == []

    def test_header_without_minute_columns_rejected(self, tmp_path):
        path = tmp_path / INVOCATIONS_TEMPLATE.format(day=1)
        path.write_text("HashOwner,HashApp,HashFunction,Trigger\n")
        with pytest.raises(AzureIngestError, match="minute columns"):
            list(iter_invocation_rows(path))

    def test_invalid_malformed_mode_rejected(self, tmp_path):
        path = write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        with pytest.raises(ValueError, match="on_malformed"):
            list(iter_invocation_rows(path, on_malformed="ignore"))

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("invocations_per_function_md.anon.d07.csv", 7),
            ("d14.csv", 14),
            ("function_durations_percentiles.anon.d01.csv", 1),
            ("invocations.csv", None),
            ("d7.csv", None),
        ],
    )
    def test_day_number(self, name, expected):
        assert day_number(name) == expected


# --------------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------------- #
class TestConfig:
    def test_days_are_sorted_and_deduplicated(self):
        assert Azure2019Config(days=(3, 1, 2)).days == (1, 2, 3)
        with pytest.raises(ValueError, match="duplicate"):
            Azure2019Config(days=(1, 1))

    def test_days_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            Azure2019Config(days=(0, 1))
        with pytest.raises(ValueError, match="at least one"):
            Azure2019Config(days=())

    def test_selection_modes_validated(self):
        with pytest.raises(ValueError, match="selection"):
            Azure2019Config(selection="best")
        with pytest.raises(ValueError, match="max_functions"):
            Azure2019Config(selection="top")
        with pytest.raises(ValueError, match="positive"):
            Azure2019Config(max_functions=0)

    def test_trigger_filter_accepts_enum_and_string(self):
        config = Azure2019Config(triggers=(TriggerType.HTTP, "timer"))
        assert config.triggers == ("http", "timer")
        with pytest.raises(ValueError, match="unknown trigger"):
            Azure2019Config(triggers=("warp",))

    def test_canonical_is_stable_under_day_order(self):
        assert (
            Azure2019Config(days=(2, 1)).canonical()
            == Azure2019Config(days=(1, 2)).canonical()
        )


# --------------------------------------------------------------------------- #
# Hypothesis: ingestion against a brute-force dense reconstruction
# --------------------------------------------------------------------------- #
#: One generated function-day: a handful of (minute, count) entries.
minute_counts = st.dictionaries(
    st.integers(min_value=0, max_value=MINUTES_PER_DAY - 1),
    st.integers(min_value=1, max_value=9),
    max_size=6,
)
#: A generated dataset: per day, per function index, its minute counts.
#: Functions can be absent on a day (the dataset registry semantics).
datasets = st.lists(  # days
    st.dictionaries(  # function index -> its minute counts that day
        st.integers(min_value=0, max_value=5), minute_counts, max_size=6
    ),
    min_size=1,
    max_size=3,
)

_TRIGGER_POOL = ("http", "timer", "queue", "blob", "unknownTrigger")


def materialize(tmp_path, day_data):
    """Write the generated dataset and return the brute-force dense truth:
    ``{function_key: per_minute_array}`` over the full day range.

    Every key with a row in *any* day file is present — an all-zero row
    still registers the function (the dataset's registry semantics), so the
    truth includes silent functions with all-zero series.
    """
    duration = len(day_data) * MINUTES_PER_DAY
    dense = {}
    for day_index, functions in enumerate(day_data):
        rows = []
        for index in sorted(functions):
            key = f"o{index % 2}", f"a{index % 2}", f"f{index}"
            trigger = _TRIGGER_POOL[index % len(_TRIGGER_POOL)]
            rows.append((*key, trigger, functions[index]))
            series = dense.setdefault(key, np.zeros(duration, dtype=np.int64))
            for minute, count in functions[index].items():
                series[day_index * MINUTES_PER_DAY + minute] += count
        write_day(tmp_path, day_index + 1, rows)
    return dense


class TestIngestionProperties:
    @settings(max_examples=12, deadline=None)
    @given(day_data=datasets)
    def test_csr_matches_dense_reconstruction(self, tmp_path_factory, day_data):
        tmp_path = tmp_path_factory.mktemp("azure-prop")
        dense = materialize(tmp_path, day_data)
        if not dense:
            with pytest.raises(AzureIngestError, match="no functions"):
                load_azure2019(
                    tmp_path, cache_dir=None, days=tuple(range(1, len(day_data) + 1))
                )
            return
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=tuple(range(1, len(day_data) + 1))
        )
        # Function count == distinct (owner, app, func) triples in the files.
        assert len(trace) == len(dense)
        # CSR row sums == the source's per-minute column sums, per function
        # and per minute.
        total_per_minute = np.zeros(trace.duration_minutes, dtype=np.int64)
        for (owner, app, func), expected in dense.items():
            series = trace.series(f"{owner}:{app}:{func}")
            np.testing.assert_array_equal(series, expected)
            total_per_minute += expected
        index = trace.invocation_index()
        observed_per_minute = np.zeros(trace.duration_minutes, dtype=np.int64)
        np.add.at(
            observed_per_minute,
            np.repeat(np.arange(trace.duration_minutes), np.diff(index.indptr)),
            index.counts,
        )
        np.testing.assert_array_equal(observed_per_minute, total_per_minute)

    @settings(max_examples=8, deadline=None)
    @given(day_data=datasets)
    def test_day_slices_concatenate_to_the_full_range(
        self, tmp_path_factory, day_data
    ):
        tmp_path = tmp_path_factory.mktemp("azure-slice")
        dense = materialize(tmp_path, day_data)
        if not dense:
            return
        days = tuple(range(1, len(day_data) + 1))
        full = load_azure2019(tmp_path, cache_dir=None, days=days)
        for function_id in full.function_ids:
            rebuilt = np.zeros(full.duration_minutes, dtype=np.int64)
            for slot, day in enumerate(days):
                try:
                    part = load_azure2019(tmp_path, cache_dir=None, days=(day,))
                except AzureIngestError:
                    continue  # a day with no traffic at all
                if function_id in part:
                    offset = slot * MINUTES_PER_DAY
                    rebuilt[offset : offset + MINUTES_PER_DAY] = part.series(
                        function_id
                    )
            np.testing.assert_array_equal(rebuilt, full.series(function_id))

    @settings(max_examples=8, deadline=None)
    @given(day_data=datasets)
    def test_trigger_filter_keeps_exactly_the_matching_functions(
        self, tmp_path_factory, day_data
    ):
        tmp_path = tmp_path_factory.mktemp("azure-filter")
        dense = materialize(tmp_path, day_data)
        days = tuple(range(1, len(day_data) + 1))
        expected = {
            key
            for key in dense
            # index i sits at _TRIGGER_POOL[i % 5]; keep http (index 0) only.
            if int(key[2][1:]) % len(_TRIGGER_POOL) == 0
        }
        if not expected:
            if dense:
                with pytest.raises(AzureIngestError, match="selection left nothing"):
                    load_azure2019(
                        tmp_path, cache_dir=None, days=days, triggers=("http",)
                    )
            return
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=days, triggers=("http",)
        )
        assert {
            tuple(fid.split(":")) for fid in trace.function_ids
        } == expected


# --------------------------------------------------------------------------- #
# Ingestion specifics: order, selection, duplicates, durations
# --------------------------------------------------------------------------- #
class TestIngestion:
    def test_functions_keep_first_seen_order(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "fB", "http", {0: 1}),
                ("o", "a", "fA", "http", {1: 1}),
            ],
        )
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert trace.function_ids == ["o:a:fB", "o:a:fA"]

    def test_duplicate_rows_are_summed(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "f", "http", {5: 1}),
                ("o", "a", "f", "http", {5: 2, 6: 1}),
            ],
        )
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        series = trace.series("o:a:f")
        assert series[5] == 3 and series[6] == 1
        assert trace.total_invocations() == 4

    def test_unknown_trigger_falls_back_to_others(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "cosmosDBTrigger", {0: 1})])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert trace.record("o:a:f").trigger is TriggerType.OTHERS

    def test_top_selection_keeps_the_most_invoked(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "cold", "http", {0: 1}),
                ("o", "a", "hot", "http", {0: 50}),
                ("o", "a", "warm", "http", {0: 10}),
            ],
        )
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=(1,), selection="top", max_functions=2
        )
        # The two most-invoked survive, listed in first-seen order.
        assert trace.function_ids == ["o:a:hot", "o:a:warm"]

    def test_sample_selection_is_seed_deterministic(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [("o", "a", f"f{i}", "http", {i: 1}) for i in range(12)],
        )
        kwargs = dict(
            cache_dir=None, days=(1,), selection="sample", max_functions=4
        )
        first = load_azure2019(tmp_path, seed=7, **kwargs)
        second = load_azure2019(tmp_path, seed=7, **kwargs)
        other = load_azure2019(tmp_path, seed=8, **kwargs)
        assert len(first) == 4
        assert first.function_ids == second.function_ids
        assert first.function_ids != other.function_ids

    def test_min_invocations_filters_sparse_functions(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "busy", "http", {0: 20}),
                ("o", "a", "quiet", "http", {0: 1}),
            ],
        )
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=(1,), min_invocations=5
        )
        assert trace.function_ids == ["o:a:busy"]

    def test_missing_day_file_raises_with_available_days(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        with pytest.raises(AzureIngestError, match=r"day\(s\) \[2\]"):
            load_azure2019(tmp_path, cache_dir=None, days=(1, 2))

    def test_measured_durations_join_count_weighted(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        write_day(tmp_path, 2, [("o", "a", "f", "http", {0: 1})])
        write_durations(tmp_path, 1, [("o", "a", "f", 100.0, 1)])
        write_durations(tmp_path, 2, [("o", "a", "f", 200.0, 3)])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1, 2))
        record = trace.record("o:a:f")
        assert record.duration is not None
        assert record.duration.execution_ms == pytest.approx(175.0)
        # The dataset has no cold-start latency; the trigger model fills it.
        assert (
            record.duration.cold_start_ms
            == TRIGGER_DURATION_PROFILES["http"].cold_start_ms
        )
        # The measured profile wins in the archetype derivation.
        assert duration_profile_for(record) is record.duration

    def test_missing_duration_row_falls_back_to_the_archetype_model(
        self, tmp_path
    ):
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "measured", "http", {0: 1}),
                ("o", "a", "unmeasured", "timer", {0: 1}),
            ],
        )
        write_durations(tmp_path, 1, [("o", "a", "measured", 80.0, 2)])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert trace.record("o:a:measured").duration is not None
        unmeasured = trace.record("o:a:unmeasured")
        assert unmeasured.duration is None
        # ... which sends duration_profile_for down the trigger derivation:
        # the timer base profile with the deterministic per-function spread.
        profile = duration_profile_for(unmeasured)
        base = TRIGGER_DURATION_PROFILES["timer"].cold_start_ms
        assert 0.6 * base <= profile.cold_start_ms < 1.8 * base
        assert profile == duration_profile_for(unmeasured)

    def test_duration_file_without_required_columns_rejected(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        bad = tmp_path / DURATIONS_TEMPLATE.format(day=1)
        bad.write_text("HashOwner,HashApp,HashFunction,Mean\no,a,f,1.0\n")
        with pytest.raises(AzureIngestError, match="Average/Count"):
            load_azure2019(tmp_path, cache_dir=None, days=(1,))

    def test_join_durations_false_skips_the_duration_files(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        # Garbled duration file: only read when the join is on.
        bad = tmp_path / DURATIONS_TEMPLATE.format(day=1)
        bad.write_text("HashOwner,HashApp,HashFunction,Mean\no,a,f,1.0\n")
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=(1,), join_durations=False
        )
        assert trace.record("o:a:f").duration is None

    def test_metadata_carries_the_dataset_identity(self, tmp_path):
        write_day(tmp_path, 2, [("o", "a", "f", "http", {0: 1})])
        write_day(tmp_path, 3, [("o", "a", "f", "http", {3: 1})])
        dataset = Azure2019Dataset(tmp_path, cache_dir=None)
        config = Azure2019Config(days=(2, 3))
        trace = dataset.load(config)
        assert trace.metadata.name == "azure2019-d02-d03"
        assert trace.metadata.extra["days"] == [2, 3]
        assert trace.metadata.extra["dataset_fingerprint"] == dataset.fingerprint(
            config
        )

    def test_agrees_with_the_dense_loader(self, tmp_path):
        """The streaming path and the legacy dense loader are the same
        function of the same files."""
        write_azure2019_fixture(tmp_path, n_functions=10, days=2, seed=42)
        sparse = load_azure2019(
            tmp_path, cache_dir=None, days=(1, 2), join_durations=False
        )
        dense = load_azure_invocation_csv(
            [tmp_path / INVOCATIONS_TEMPLATE.format(day=day) for day in (1, 2)]
        )
        assert sparse.function_ids == dense.function_ids
        sparse_index = sparse.invocation_index()
        dense_index = dense.invocation_index()
        np.testing.assert_array_equal(sparse_index.indptr, dense_index.indptr)
        np.testing.assert_array_equal(sparse_index.indices, dense_index.indices)
        np.testing.assert_array_equal(sparse_index.counts, dense_index.counts)


# --------------------------------------------------------------------------- #
# The app-memory join
# --------------------------------------------------------------------------- #
class TestMemoryJoin:
    def test_weighted_across_days_for_a_single_function_app(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        write_day(tmp_path, 2, [("o", "a", "f", "http", {0: 1})])
        write_memory(tmp_path, 1, [("o", "a", 1, 100.0)])
        write_memory(tmp_path, 2, [("o", "a", 3, 200.0)])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1, 2))
        # SampleCount-weighted mean: (100*1 + 200*3) / 4 = 175.
        assert trace.record("o:a:f").memory_mb == pytest.approx(175.0)

    def test_fans_out_equally_over_the_apps_functions(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "f1", "http", {0: 5}),
                ("o", "a", "f2", "timer", {1: 5}),
                ("o", "b", "solo", "http", {2: 5}),
            ],
        )
        write_memory(tmp_path, 1, [("o", "a", 10, 300.0), ("o", "b", 10, 80.0)])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert trace.record("o:a:f1").memory_mb == pytest.approx(150.0)
        assert trace.record("o:a:f2").memory_mb == pytest.approx(150.0)
        assert trace.record("o:b:solo").memory_mb == pytest.approx(80.0)

    def test_fan_out_counts_the_full_population_not_the_selection(self, tmp_path):
        """A top-N slice must not inflate the survivors' share of the app."""
        write_day(
            tmp_path,
            1,
            [
                ("o", "a", "hot", "http", {0: 100}),
                ("o", "a", "cold", "http", {0: 1}),
            ],
        )
        write_memory(tmp_path, 1, [("o", "a", 10, 300.0)])
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=(1,), selection="top", max_functions=1
        )
        assert trace.function_ids == ["o:a:hot"]
        # Still divided by the app's two dataset functions, not the one kept.
        assert trace.record("o:a:hot").memory_mb == pytest.approx(150.0)

    def test_memory_percentile_selects_the_published_column(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        write_memory(tmp_path, 1, [("o", "a", 2, 100.0)])
        p95 = load_azure2019(
            tmp_path, cache_dir=None, days=(1,), memory_percentile=95
        )
        # The helper writes pctP = average * P.
        assert p95.record("o:a:f").memory_mb == pytest.approx(9500.0)

    def test_unknown_memory_percentile_rejected(self):
        with pytest.raises(ValueError, match="memory_percentile"):
            Azure2019Config(days=(1,), memory_percentile=42)

    def test_missing_memory_row_keeps_none(self, tmp_path):
        write_day(
            tmp_path,
            1,
            [
                ("o", "covered", "f", "http", {0: 1}),
                ("o", "uncovered", "g", "http", {0: 1}),
            ],
        )
        write_memory(tmp_path, 1, [("o", "covered", 1, 64.0)])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert trace.record("o:covered:f").memory_mb == pytest.approx(64.0)
        assert trace.record("o:uncovered:g").memory_mb is None

    def test_missing_memory_file_is_legitimate(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert trace.record("o:a:f").memory_mb is None

    def test_join_memory_false_skips_the_memory_files(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        # Garbled memory file: only read when the join is on.
        bad = tmp_path / MEMORY_TEMPLATE.format(day=1)
        bad.write_text("HashOwner,HashApp,MeanMb\no,a,1.0\n")
        trace = load_azure2019(
            tmp_path, cache_dir=None, days=(1,), join_memory=False
        )
        assert trace.record("o:a:f").memory_mb is None

    def test_memory_file_without_required_columns_rejected(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        bad = tmp_path / MEMORY_TEMPLATE.format(day=1)
        bad.write_text("HashOwner,HashApp,MeanMb\no,a,1.0\n")
        with pytest.raises(AzureIngestError, match="SampleCount"):
            load_azure2019(tmp_path, cache_dir=None, days=(1,))

    def test_garbled_memory_statistics_rejected(self, tmp_path):
        write_day(tmp_path, 1, [("o", "a", "f", "http", {0: 1})])
        write_memory(tmp_path, 1, [("o", "a", "many", 100.0)])
        with pytest.raises(AzureIngestError, match="invalid memory statistics"):
            load_azure2019(tmp_path, cache_dir=None, days=(1,))

    def test_fixture_population_joins_footprints(self, tmp_path):
        write_azure2019_fixture(
            tmp_path, n_functions=12, days=2, seed=2,
            missing_memory_fraction=0.5,
        )
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1, 2))
        footprints = [record.memory_mb for record in trace.records()]
        # Both sides of the join: covered apps with measured footprints and
        # deliberately-dropped apps on the None fallback.
        assert any(value is not None and value > 0 for value in footprints)
        assert any(value is None for value in footprints)


# --------------------------------------------------------------------------- #
# The on-disk cache
# --------------------------------------------------------------------------- #
class TestCache:
    def _write(self, tmp_path):
        write_azure2019_fixture(tmp_path, n_functions=8, days=2, seed=11)

    def test_second_load_replays_the_cache(self, tmp_path, monkeypatch):
        self._write(tmp_path)
        dataset = Azure2019Dataset(tmp_path)
        first = dataset.load(Azure2019Config(days=(1, 2)))
        assert any(dataset.cache_dir.glob("azure2019-*.npz"))
        # Prove the replay never re-ingests: break the ingestion path.
        import repro.traces.azure2019 as module

        def boom(*args, **kwargs):
            raise AssertionError("cache miss: _ingest was called")

        monkeypatch.setattr(module, "_ingest", boom)
        second = Azure2019Dataset(tmp_path).load(Azure2019Config(days=(1, 2)))
        assert second.fingerprint() == first.fingerprint()
        assert second.function_ids == first.function_ids
        for a, b in zip(first.records(), second.records()):
            assert a == b

    def test_editing_a_source_file_invalidates(self, tmp_path):
        self._write(tmp_path)
        dataset = Azure2019Dataset(tmp_path)
        config = Azure2019Config(days=(1, 2))
        before = dataset.fingerprint(config)
        dataset.load(config)
        path = tmp_path / INVOCATIONS_TEMPLATE.format(day=1)
        write_day(tmp_path, 1, [("oX", "aX", "fX", "http", {0: 3})])
        assert path.read_text()  # rewritten
        fresh = Azure2019Dataset(tmp_path)
        assert fresh.fingerprint(config) != before
        trace = fresh.load(config)
        assert trace.function_ids[0] == "oX:aX:fX"

    def test_different_options_use_different_cache_entries(self, tmp_path):
        self._write(tmp_path)
        dataset = Azure2019Dataset(tmp_path)
        dataset.load(Azure2019Config(days=(1,)))
        dataset.load(Azure2019Config(days=(1, 2)))
        assert len(list(dataset.cache_dir.glob("azure2019-*.npz"))) == 2

    def test_corrupt_cache_entry_falls_back_to_reingestion(self, tmp_path):
        self._write(tmp_path)
        dataset = Azure2019Dataset(tmp_path)
        config = Azure2019Config(days=(1, 2))
        first = dataset.load(config)
        [entry] = dataset.cache_dir.glob("azure2019-*.npz")
        entry.write_bytes(b"not an npz archive")
        second = Azure2019Dataset(tmp_path).load(config)
        assert second.fingerprint() == first.fingerprint()

    def test_cache_dir_none_writes_nothing(self, tmp_path):
        self._write(tmp_path)
        load_azure2019(tmp_path, cache_dir=None, days=(1,))
        assert not (tmp_path / ".spes-cache").exists()

    def test_cached_replay_preserves_measured_durations(self, tmp_path):
        self._write(tmp_path)
        dataset = Azure2019Dataset(tmp_path)
        config = Azure2019Config(days=(1, 2))
        first = dataset.load(config)
        second = Azure2019Dataset(tmp_path).load(config)
        measured = [
            record.function_id for record in first.records()
            if record.duration is not None
        ]
        assert measured  # the fixture joins durations for most functions
        for function_id in measured:
            assert (
                second.record(function_id).duration
                == first.record(function_id).duration
            )

    def test_fingerprint_covers_duration_files(self, tmp_path):
        self._write(tmp_path)
        config = Azure2019Config(days=(1, 2))
        before = Azure2019Dataset(tmp_path).fingerprint(config)
        write_durations(tmp_path, 1, [("o", "a", "f", 123.0, 1)])
        assert Azure2019Dataset(tmp_path).fingerprint(config) != before

    def test_fingerprint_covers_memory_files(self, tmp_path):
        self._write(tmp_path)
        config = Azure2019Config(days=(1, 2))
        before = Azure2019Dataset(tmp_path).fingerprint(config)
        write_memory(tmp_path, 1, [("o", "a", 1, 100.0)])
        assert Azure2019Dataset(tmp_path).fingerprint(config) != before

    def test_cached_replay_preserves_memory_footprints(self, tmp_path):
        self._write(tmp_path)
        dataset = Azure2019Dataset(tmp_path)
        config = Azure2019Config(days=(1, 2))
        first = dataset.load(config)
        second = Azure2019Dataset(tmp_path).load(config)
        measured = [
            record.function_id for record in first.records()
            if record.memory_mb is not None
        ]
        assert measured  # the fixture joins memory for every covered app
        for function_id in measured:
            assert (
                second.record(function_id).memory_mb
                == first.record(function_id).memory_mb
            )


# --------------------------------------------------------------------------- #
# The fixture generator
# --------------------------------------------------------------------------- #
class TestFixture:
    def test_writes_are_byte_identical(self, tmp_path):
        first = write_azure2019_fixture(tmp_path / "a", n_functions=6, days=2)
        second = write_azure2019_fixture(tmp_path / "b", n_functions=6, days=2)
        assert [path.name for path in first] == [path.name for path in second]
        for a, b in zip(first, second):
            assert a.read_bytes() == b.read_bytes()

    def test_emits_all_three_file_families(self, tmp_path):
        written = write_azure2019_fixture(tmp_path, n_functions=4, days=2)
        names = {path.name for path in written}
        for day in (1, 2):
            assert INVOCATIONS_TEMPLATE.format(day=day) in names
            assert DURATIONS_TEMPLATE.format(day=day) in names
        assert len(written) == 6

    def test_loads_through_the_full_pipeline(self, tmp_path):
        write_azure2019_fixture(tmp_path, n_functions=12, days=2, seed=5)
        trace = load_azure2019(tmp_path, cache_dir=None, days=(1, 2))
        assert isinstance(trace, SparseTrace)
        assert len(trace) == 12
        assert trace.duration_minutes == 2 * MINUTES_PER_DAY
        assert trace.total_invocations() > 0
        # Some functions measured, some on the archetype fallback, and the
        # unknown trigger label in the pool maps to OTHERS somewhere in a
        # big-enough population.
        durations = [record.duration for record in trace.records()]
        assert any(d is not None for d in durations)

    def test_different_seeds_differ(self, tmp_path):
        write_azure2019_fixture(tmp_path / "a", n_functions=6, days=1, seed=1)
        write_azure2019_fixture(tmp_path / "b", n_functions=6, days=1, seed=2)
        a = (tmp_path / "a" / INVOCATIONS_TEMPLATE.format(day=1)).read_bytes()
        b = (tmp_path / "b" / INVOCATIONS_TEMPLATE.format(day=1)).read_bytes()
        assert a != b

    def test_degenerate_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_azure2019_fixture(tmp_path, n_functions=0)
        with pytest.raises(ValueError):
            write_azure2019_fixture(tmp_path, days=0)


# --------------------------------------------------------------------------- #
# SparseTrace container semantics
# --------------------------------------------------------------------------- #
class TestSparseTrace:
    def _dense(self):
        from repro.traces import FunctionRecord
        from repro.traces.schema import TraceMetadata

        records = [
            FunctionRecord("f1", "a", "o", trigger=TriggerType.HTTP),
            FunctionRecord("f2", "a", "o", trigger=TriggerType.TIMER),
            FunctionRecord("silent", "a", "o"),
        ]
        counts = {
            "f1": [2, 0, 1, 0, 0, 3],
            "f2": [0, 1, 0, 0, 1, 0],
            "silent": [0, 0, 0, 0, 0, 0],
        }
        return Trace(records, counts, TraceMetadata(name="t", duration_minutes=6))

    def test_round_trips_through_densify(self):
        dense = self._dense()
        sparse = SparseTrace.from_dense(dense)
        rebuilt = sparse.densify()
        assert rebuilt.function_ids == dense.function_ids
        for fid in dense.function_ids:
            np.testing.assert_array_equal(rebuilt.series(fid), dense.series(fid))

    def test_matches_dense_accessors(self):
        dense = self._dense()
        sparse = SparseTrace.from_dense(dense)
        assert sparse.total_invocations() == dense.total_invocations()
        assert sparse.total_invocations("f1") == 6
        assert sparse.invoked_function_ids() == dense.invoked_function_ids()
        assert sparse.invocations_at(4) == dense.invocations_at(4)
        assert list(sparse.iter_minutes()) == list(dense.iter_minutes())

    def test_invocation_index_is_identical_to_dense(self):
        dense = self._dense()
        sparse = SparseTrace.from_dense(dense)
        a, b = dense.invocation_index(), sparse.invocation_index()
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_slice_stays_sparse_and_matches_dense(self):
        dense = self._dense()
        sparse = SparseTrace.from_dense(dense)
        a, b = dense.slice(1, 5), sparse.slice(1, 5)
        assert isinstance(b, SparseTrace)
        for fid in dense.function_ids:
            np.testing.assert_array_equal(a.series(fid), b.series(fid))

    def test_split_trace_works_unchanged(self):
        sparse = SparseTrace.from_dense(self._dense())
        split = split_trace(sparse, training_days=3 / MINUTES_PER_DAY)
        assert split.training.duration_minutes == 3
        assert split.simulation.duration_minutes == 3
        assert isinstance(split.simulation, SparseTrace)

    def test_fingerprint_lives_in_its_own_domain(self):
        dense = self._dense()
        sparse = SparseTrace.from_dense(dense)
        assert sparse.fingerprint() != dense.fingerprint()
        assert sparse.fingerprint() == SparseTrace.from_dense(dense).fingerprint()

    def test_fingerprint_covers_measured_durations(self, tmp_path):
        from dataclasses import replace

        from repro.traces.schema import DurationProfile

        sparse = SparseTrace.from_dense(self._dense())
        records = [
            replace(record, duration=DurationProfile(100.0, 10.0))
            if record.function_id == "f1"
            else record
            for record in sparse.records()
        ]
        relabeled = SparseTrace(
            records,
            sparse._fn_indptr,
            sparse._fn_minutes,
            sparse._fn_counts,
            sparse.duration_minutes,
            sparse.metadata,
        )
        assert relabeled.fingerprint() != sparse.fingerprint()

    def test_series_is_read_only(self):
        sparse = SparseTrace.from_dense(self._dense())
        with pytest.raises(ValueError):
            sparse.series("f1")[0] = 99

    def test_pickle_round_trip(self):
        sparse = SparseTrace.from_dense(self._dense())
        clone = pickle.loads(pickle.dumps(sparse))
        assert clone.fingerprint() == sparse.fingerprint()
        np.testing.assert_array_equal(clone.series("f1"), sparse.series("f1"))

    def test_invalid_layouts_rejected(self):
        from repro.traces import FunctionRecord

        records = [FunctionRecord("f", "a", "o")]
        indptr = np.array([0, 2], dtype=np.int64)
        minutes = np.array([1, 1], dtype=np.int64)  # not strictly increasing
        counts = np.array([1, 1], dtype=np.int64)
        with pytest.raises(ValueError):
            SparseTrace(records, indptr, minutes, counts, 6)
        with pytest.raises(ValueError):
            SparseTrace(
                records,
                np.array([0, 1], dtype=np.int64),
                np.array([9], dtype=np.int64),  # minute out of range
                np.array([1], dtype=np.int64),
                6,
            )
        with pytest.raises(ValueError):
            SparseTrace(
                records,
                np.array([0, 1], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([0], dtype=np.int64),  # zero count
                6,
            )
