"""Tests for the per-pattern invocation generators."""

import numpy as np
import pytest

from repro.core.sequences import extract_sequences
from repro.traces import archetypes


class TestAlwaysWarm:
    def test_invoked_almost_every_minute(self, rng):
        series = archetypes.generate_always_warm(rng, 1000)
        assert (series > 0).mean() > 0.99

    def test_length_and_dtype(self, rng):
        series = archetypes.generate_always_warm(rng, 50)
        assert series.shape == (50,)
        assert series.dtype == np.int64

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_always_warm(rng, 0)


class TestPeriodic:
    def test_exact_period_without_jitter(self, rng):
        series = archetypes.generate_periodic(
            rng, 600, period=60, jitter_probability=0.0, phase=0
        )
        minutes = np.nonzero(series)[0]
        assert list(minutes) == list(range(0, 600, 60))

    def test_miss_probability_drops_firings(self, rng):
        full = archetypes.generate_periodic(
            rng, 6000, period=10, jitter_probability=0.0, miss_probability=0.0, phase=0
        )
        sparse = archetypes.generate_periodic(
            rng, 6000, period=10, jitter_probability=0.0, miss_probability=0.5, phase=0
        )
        assert sparse.sum() < full.sum()

    def test_extra_noise_adds_invocations(self, rng):
        noisy = archetypes.generate_periodic(
            rng, 5000, period=100, jitter_probability=0.0, extra_noise_rate=0.05, phase=0
        )
        assert noisy.sum() > 5000 // 100

    def test_rejects_invalid_period(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_periodic(rng, 100, period=0)

    def test_rejects_invalid_miss_probability(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_periodic(rng, 100, miss_probability=1.5)


class TestQuasiPeriodic:
    def test_gaps_within_period_set(self, rng):
        periods = (7, 8, 9)
        series = archetypes.generate_quasi_periodic(rng, 2000, periods=periods)
        gaps = np.diff(np.nonzero(series)[0])
        assert set(gaps).issubset(set(periods))

    def test_rejects_empty_periods(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_quasi_periodic(rng, 100, periods=())

    def test_rejects_mismatched_weights(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_quasi_periodic(rng, 100, periods=(3, 4), weights=(1.0,))


class TestDensePoisson:
    def test_mean_rate_close_to_requested(self, rng):
        series = archetypes.generate_dense_poisson(
            rng, 20000, rate_per_minute=1.0, diurnal=False
        )
        assert series.mean() == pytest.approx(1.0, rel=0.1)

    def test_diurnal_modulation_changes_variance(self, rng):
        flat = archetypes.generate_dense_poisson(rng, 2880, rate_per_minute=2.0, diurnal=False)
        diurnal = archetypes.generate_dense_poisson(
            rng, 2880, rate_per_minute=2.0, diurnal=True, diurnal_amplitude=0.9
        )
        assert diurnal.std() > flat.std()

    def test_rejects_non_positive_rate(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_dense_poisson(rng, 100, rate_per_minute=0.0)


class TestBursty:
    def test_invocations_concentrated_in_bursts(self, rng):
        series = archetypes.generate_bursty(rng, 10000, burst_count=4, min_gap=800)
        summary = extract_sequences(series)
        # Few distinct activity periods, each several minutes long.
        assert len(summary.active_times) <= 8
        assert max(summary.active_times) >= 8

    def test_rejects_bad_burst_length_range(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_bursty(rng, 100, burst_length_range=(10, 5))


class TestPulsed:
    def test_pulses_are_short(self, rng):
        series = archetypes.generate_pulsed(rng, 10000, pulse_count=5, min_gap=1000)
        summary = extract_sequences(series)
        assert max(summary.active_times) <= 6

    def test_gaps_are_long(self, rng):
        series = archetypes.generate_pulsed(rng, 10000, pulse_count=5, min_gap=1000)
        summary = extract_sequences(series)
        if summary.waiting_times:
            assert min(summary.waiting_times) >= 1000


class TestChained:
    def test_child_follows_parent_with_lag(self, rng):
        parent = np.zeros(100, dtype=np.int64)
        parent[[10, 40, 70]] = 1
        child = archetypes.generate_chained(rng, parent, lag=3, trigger_probability=1.0)
        assert list(np.nonzero(child)[0]) == [13, 43, 73]

    def test_trigger_probability_thins_children(self, rng):
        parent = np.ones(2000, dtype=np.int64)
        child = archetypes.generate_chained(rng, parent, lag=1, trigger_probability=0.3)
        assert 0 < child.sum() < parent.sum()

    def test_lag_beyond_duration_dropped(self, rng):
        parent = np.zeros(10, dtype=np.int64)
        parent[9] = 1
        child = archetypes.generate_chained(rng, parent, lag=5, trigger_probability=1.0)
        assert child.sum() == 0

    def test_rejects_negative_lag(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_chained(rng, np.ones(5, dtype=np.int64), lag=-1)


class TestRare:
    def test_invocation_count_without_gap(self, rng):
        series = archetypes.generate_rare(rng, 5000, invocation_count=4)
        assert int((series > 0).sum()) == 4

    def test_repeated_gap_produces_repeated_waiting_times(self, rng):
        series = archetypes.generate_rare(rng, 5000, invocation_count=5, repeated_gap=300)
        gaps = np.diff(np.nonzero(series)[0])
        assert set(gaps) == {300}

    def test_rejects_bad_count(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_rare(rng, 100, invocation_count=0)


class TestDrifting:
    def test_behaviour_changes_at_change_point(self, rng):
        series = archetypes.generate_drifting(
            rng, 4000, first_period=50, second_rate=1.0, change_point_fraction=0.5
        )
        first_half_rate = (series[:2000] > 0).mean()
        second_half_rate = (series[2000:] > 0).mean()
        assert second_half_rate > first_half_rate * 5

    def test_rejects_bad_change_point(self, rng):
        with pytest.raises(ValueError):
            archetypes.generate_drifting(rng, 100, change_point_fraction=1.5)
