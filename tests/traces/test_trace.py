"""Tests for the Trace container and train/simulation splitting."""

import numpy as np
import pytest

from repro.traces import FunctionRecord, Trace, TriggerType, split_trace
from repro.traces.schema import MINUTES_PER_DAY, TraceMetadata


def make_trace(counts, records=None, name="test"):
    if records is None:
        records = [
            FunctionRecord(function_id=fid, app_id=f"app-{fid}", owner_id=f"owner-{fid}")
            for fid in counts
        ]
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name=name, duration_minutes=duration))


class TestTraceConstruction:
    def test_basic_properties(self, tiny_trace):
        assert len(tiny_trace) == 3
        assert tiny_trace.duration_minutes == 20
        assert set(tiny_trace.function_ids) == {"periodic", "chained", "rare"}

    def test_duplicate_function_ids_rejected(self):
        records = [
            FunctionRecord("f", "a", "o"),
            FunctionRecord("f", "a2", "o2"),
        ]
        with pytest.raises(ValueError):
            Trace(records, {"f": [0, 1]})

    def test_counts_for_unknown_function_rejected(self):
        records = [FunctionRecord("f", "a", "o")]
        with pytest.raises(KeyError):
            Trace(records, {"f": [0, 1], "ghost": [1, 0]})

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            make_trace({"f": [1, -1, 0]})

    def test_mismatched_lengths_rejected(self):
        records = [FunctionRecord("a", "x", "y"), FunctionRecord("b", "x", "y")]
        with pytest.raises(ValueError):
            Trace(records, {"a": [1, 0], "b": [1, 0, 0]})

    def test_missing_series_filled_with_zeros(self):
        records = [FunctionRecord("a", "x", "y"), FunctionRecord("b", "x", "y")]
        trace = Trace(records, {"a": [1, 0, 2]})
        assert trace.total_invocations("b") == 0
        assert trace.series("b").shape == (3,)

    def test_series_is_read_only(self, tiny_trace):
        series = tiny_trace.series("periodic")
        with pytest.raises(ValueError):
            series[0] = 99

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace([], {})


class TestTraceAccess:
    def test_total_invocations(self, tiny_trace):
        assert tiny_trace.total_invocations("periodic") == 4
        assert tiny_trace.total_invocations() == 4 + 4 + 1

    def test_invocations_at(self, tiny_trace):
        assert tiny_trace.invocations_at(0) == {"periodic": 1}
        assert tiny_trace.invocations_at(2) == {"chained": 1}
        assert tiny_trace.invocations_at(1) == {}

    def test_invocations_at_out_of_range(self, tiny_trace):
        with pytest.raises(IndexError):
            tiny_trace.invocations_at(20)

    def test_iter_minutes_covers_all_invocations(self, tiny_trace):
        total = sum(
            sum(invocations.values()) for _, invocations in tiny_trace.iter_minutes()
        )
        assert total == tiny_trace.total_invocations()

    def test_iter_minutes_range(self, tiny_trace):
        minutes = [minute for minute, _ in tiny_trace.iter_minutes(start=5, stop=10)]
        assert minutes == [5, 6, 7, 8, 9]

    def test_invoked_function_ids(self, tiny_trace):
        assert set(tiny_trace.invoked_function_ids()) == {"periodic", "chained", "rare"}

    def test_grouping_helpers(self, tiny_trace):
        assert tiny_trace.functions_by_app()["app-1"] == ["periodic", "chained"]
        assert tiny_trace.functions_by_owner()["owner-2"] == ["rare"]
        assert "timer" in tiny_trace.functions_by_trigger()

    def test_record_lookup(self, tiny_trace):
        assert tiny_trace.record("rare").trigger is TriggerType.HTTP


class TestSlicing:
    def test_slice_preserves_functions(self, tiny_trace):
        sliced = tiny_trace.slice(0, 10)
        assert set(sliced.function_ids) == set(tiny_trace.function_ids)
        assert sliced.duration_minutes == 10

    def test_slice_counts(self, tiny_trace):
        sliced = tiny_trace.slice(5, 10)
        np.testing.assert_array_equal(
            sliced.series("periodic"), tiny_trace.series("periodic")[5:10]
        )

    def test_invalid_slice_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.slice(10, 5)
        with pytest.raises(ValueError):
            tiny_trace.slice(0, 100)


class TestSplit:
    def test_split_durations(self):
        duration = 3 * MINUTES_PER_DAY
        trace = make_trace({"f": np.ones(duration, dtype=int)})
        split = split_trace(trace, training_days=2.0)
        assert split.training.duration_minutes == 2 * MINUTES_PER_DAY
        assert split.simulation.duration_minutes == MINUTES_PER_DAY

    def test_split_rejects_bad_training_days(self, tiny_trace):
        with pytest.raises(ValueError):
            split_trace(tiny_trace, training_days=10.0)

    def test_unseen_function_ids(self):
        duration = 2 * MINUTES_PER_DAY
        seen = np.zeros(duration, dtype=int)
        seen[::10] = 1
        unseen = np.zeros(duration, dtype=int)
        unseen[-5] = 1
        trace = make_trace({"seen": seen, "unseen": unseen})
        split = split_trace(trace, training_days=1.0)
        assert split.unseen_function_ids == ["unseen"]
