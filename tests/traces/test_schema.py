"""Tests for repro.traces.schema."""

import pytest

from repro.traces.schema import MINUTES_PER_DAY, FunctionRecord, TraceMetadata, TriggerType


class TestTriggerType:
    def test_values_are_lowercase_strings(self):
        for trigger in TriggerType:
            assert trigger.value == trigger.value.lower()

    def test_paper_proportions_cover_all_triggers(self):
        proportions = TriggerType.paper_proportions()
        assert set(proportions) == set(TriggerType)

    def test_paper_proportions_sum_to_one(self):
        total = sum(TriggerType.paper_proportions().values())
        assert total == pytest.approx(1.0, abs=0.01)

    def test_http_is_most_common(self):
        proportions = TriggerType.paper_proportions()
        assert max(proportions, key=proportions.get) is TriggerType.HTTP


class TestFunctionRecord:
    def test_construction_defaults(self):
        record = FunctionRecord("f1", "a1", "o1")
        assert record.trigger is TriggerType.HTTP
        assert record.archetype is None

    def test_is_frozen(self):
        record = FunctionRecord("f1", "a1", "o1")
        with pytest.raises(AttributeError):
            record.function_id = "other"

    @pytest.mark.parametrize("field", ["function_id", "app_id", "owner_id"])
    def test_empty_identifier_rejected(self, field):
        kwargs = {"function_id": "f", "app_id": "a", "owner_id": "o"}
        kwargs[field] = ""
        with pytest.raises(ValueError):
            FunctionRecord(**kwargs)

    def test_equality_by_value(self):
        assert FunctionRecord("f", "a", "o") == FunctionRecord("f", "a", "o")


class TestTraceMetadata:
    def test_duration_days(self):
        metadata = TraceMetadata(name="x", duration_minutes=2 * MINUTES_PER_DAY)
        assert metadata.duration_days == pytest.approx(2.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            TraceMetadata(name="x", duration_minutes=0)

    def test_extra_defaults_to_empty_dict(self):
        metadata = TraceMetadata(name="x", duration_minutes=10)
        assert metadata.extra == {}
