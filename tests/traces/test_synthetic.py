"""Tests for the synthetic Azure-like workload generator."""

import numpy as np
import pytest

from repro.traces import AzureTraceGenerator, GeneratorProfile, TriggerType, split_trace
from repro.traces.schema import MINUTES_PER_DAY


class TestGeneratorProfile:
    def test_default_mix_is_normalizable(self):
        profile = GeneratorProfile()
        assert sum(profile.archetype_mix.values()) == pytest.approx(1.0, abs=0.05)

    def test_duration_minutes(self):
        assert GeneratorProfile(duration_days=2.0, unseen_window_days=0.5).duration_minutes == 2 * MINUTES_PER_DAY

    def test_small_profile_is_fast_sized(self):
        profile = GeneratorProfile.small()
        assert profile.n_functions <= 100
        assert profile.duration_days <= 5

    def test_paper_scale_matches_function_count(self):
        assert GeneratorProfile.paper_scale().n_functions == 83137

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_functions": 0},
            {"duration_days": 0},
            {"archetype_mix": {}},
            {"archetype_mix": {"periodic": -1.0}},
            {"unseen_fraction": 1.5},
            {"unseen_window_days": 20.0},
            {"app_archetype_affinity": 1.5},
            {"timer_miss_probability": 1.0},
            {"timer_noise_fraction_range": (0.5, 0.1)},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorProfile(**kwargs)


class TestGeneratedTrace:
    def test_function_count_and_duration(self, small_trace):
        assert len(small_trace) == 60
        assert small_trace.duration_minutes == 3 * MINUTES_PER_DAY

    def test_determinism_for_same_seed(self):
        profile = GeneratorProfile(n_functions=30, duration_days=1.0, unseen_window_days=0.25, seed=5)
        first = AzureTraceGenerator(profile).generate()
        second = AzureTraceGenerator(profile).generate()
        for function_id in first.function_ids:
            np.testing.assert_array_equal(first.series(function_id), second.series(function_id))

    def test_different_seeds_differ(self):
        one = AzureTraceGenerator(GeneratorProfile(n_functions=30, duration_days=1.0, unseen_window_days=0.25, seed=1)).generate()
        two = AzureTraceGenerator(GeneratorProfile(n_functions=30, duration_days=1.0, unseen_window_days=0.25, seed=2)).generate()
        totals_one = [one.total_invocations(fid) for fid in one.function_ids]
        totals_two = [two.total_invocations(fid) for fid in two.function_ids]
        assert totals_one != totals_two

    def test_every_function_has_metadata(self, small_trace):
        for record in small_trace.records():
            assert record.app_id.startswith("app-")
            assert record.owner_id.startswith("owner-")
            assert isinstance(record.trigger, TriggerType)
            assert record.archetype is not None

    def test_heavy_tail_most_functions_rare(self):
        trace = AzureTraceGenerator(GeneratorProfile(n_functions=300, seed=11)).generate()
        totals = np.array([trace.total_invocations(fid) for fid in trace.function_ids])
        invoked = totals[totals > 0]
        # The mean is far above the median: a heavy right tail (Fig. 3).
        assert invoked.mean() > 3 * np.median(invoked)

    def test_unseen_functions_only_in_tail_window(self):
        profile = GeneratorProfile(n_functions=200, seed=13, unseen_fraction=0.05)
        trace = AzureTraceGenerator(profile).generate()
        unseen = [
            record.function_id
            for record in trace.records()
            if record.archetype and record.archetype.startswith("unseen")
        ]
        assert unseen
        boundary = trace.duration_minutes - int(profile.unseen_window_days * MINUTES_PER_DAY)
        for function_id in unseen:
            assert trace.series(function_id)[:boundary].sum() == 0

    def test_never_invoked_functions_exist(self):
        profile = GeneratorProfile(n_functions=200, seed=13, never_invoked_fraction=0.05)
        trace = AzureTraceGenerator(profile).generate()
        never = [fid for fid in trace.function_ids if trace.total_invocations(fid) == 0]
        assert len(never) >= 5

    def test_split_produces_unseen_functions(self):
        profile = GeneratorProfile(n_functions=300, seed=17, unseen_fraction=0.03)
        trace = AzureTraceGenerator(profile).generate()
        split = split_trace(trace, training_days=12.0)
        assert len(split.unseen_function_ids) >= 3

    def test_apps_are_mostly_homogeneous(self):
        trace = AzureTraceGenerator(GeneratorProfile(n_functions=300, seed=19)).generate()
        multi_function_apps = {
            app: members
            for app, members in trace.functions_by_app().items()
            if len(members) >= 3
        }
        assert multi_function_apps
        dominant_shares = []
        for members in multi_function_apps.values():
            archetypes = [
                (trace.record(fid).archetype or "").replace("unseen_", "").replace("drifting", "x")
                for fid in members
            ]
            most_common = max(archetypes.count(a) for a in set(archetypes))
            dominant_shares.append(most_common / len(members))
        assert np.mean(dominant_shares) > 0.6

    def test_chained_functions_follow_parents(self):
        trace = AzureTraceGenerator(GeneratorProfile(n_functions=300, seed=23)).generate()
        chained = [
            record.function_id
            for record in trace.records()
            if record.archetype == "chained" and trace.total_invocations(record.function_id) > 10
        ]
        assert chained, "the default mix should produce active chained functions"
