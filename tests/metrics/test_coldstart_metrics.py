"""Tests for cold-start metrics."""

import numpy as np
import pytest

from repro.core.categories import FunctionCategory
from repro.metrics import (
    cold_start_cdf,
    cold_start_rate_percentile,
    csr_improvement,
    per_category_cold_start_rate,
)
from repro.simulation.results import FunctionStats, SimulationResult


def result_with_rates(rates, name="p"):
    per_function = {
        f"f{i}": FunctionStats(f"f{i}", invocations=10, cold_starts=int(round(rate * 10)))
        for i, rate in enumerate(rates)
    }
    return SimulationResult(
        policy_name=name,
        duration_minutes=100,
        per_function=per_function,
        memory_usage=np.zeros(100, dtype=np.int64),
    )


class TestCdf:
    def test_cdf_monotonic_and_bounded(self):
        result = result_with_rates([0.0, 0.1, 0.5, 1.0])
        x, y = cold_start_cdf(result, grid=np.linspace(0, 1, 11))
        assert (np.diff(y) >= 0).all()
        assert y[-1] == pytest.approx(1.0)

    def test_cdf_at_zero_counts_never_cold_functions(self):
        result = result_with_rates([0.0, 0.0, 1.0, 0.5])
        _, y = cold_start_cdf(result, grid=np.array([0.0]))
        assert y[0] == pytest.approx(0.5)


class TestPercentilesAndImprovement:
    def test_percentile(self):
        result = result_with_rates([0.0, 0.2, 0.4, 0.6, 0.8])
        assert cold_start_rate_percentile(result, 50.0) == pytest.approx(0.4)

    def test_improvement_positive_when_candidate_better(self):
        candidate = result_with_rates([0.1] * 10)
        baseline = result_with_rates([0.2] * 10)
        assert csr_improvement(candidate, baseline) == pytest.approx(0.5)

    def test_improvement_zero_when_baseline_zero(self):
        candidate = result_with_rates([0.1] * 10)
        baseline = result_with_rates([0.0] * 10)
        assert csr_improvement(candidate, baseline) == 0.0

    def test_improvement_requires_same_percentile_direction(self):
        candidate = result_with_rates([0.4] * 4)
        baseline = result_with_rates([0.2] * 4)
        assert csr_improvement(candidate, baseline) < 0


class TestPerCategory:
    def test_rates_grouped_by_category(self):
        result = result_with_rates([0.0, 1.0, 0.5])
        categories = {
            "f0": FunctionCategory.REGULAR,
            "f1": FunctionCategory.UNKNOWN,
            "f2": FunctionCategory.REGULAR,
        }
        rates = per_category_cold_start_rate(result, categories)
        assert rates[FunctionCategory.UNKNOWN] == pytest.approx(1.0)
        assert rates[FunctionCategory.REGULAR] == pytest.approx(0.25)

    def test_unlisted_functions_default_to_unknown(self):
        result = result_with_rates([1.0])
        rates = per_category_cold_start_rate(result, {})
        assert FunctionCategory.UNKNOWN in rates
