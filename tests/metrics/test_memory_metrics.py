"""Tests for memory metrics and the distribution/summary helpers."""

import numpy as np
import pytest

from repro.core.categories import FunctionCategory
from repro.metrics import (
    ComparisonTable,
    build_comparison,
    empirical_cdf,
    normalized_memory_usage,
    normalized_wasted_memory_time,
    per_category_wmt_ratio,
    percentile_table,
    wmt_reduction,
)
from repro.simulation.results import FunctionStats, SimulationResult


def result_with_memory(avg_memory, wmt, name="p", per_function=None):
    usage = np.full(10, avg_memory, dtype=np.int64)
    return SimulationResult(
        policy_name=name,
        duration_minutes=10,
        per_function=per_function or {},
        memory_usage=usage,
        total_wasted_memory_time=wmt,
    )


class TestNormalization:
    def test_normalized_memory_usage(self):
        results = {
            "spes": result_with_memory(10, 100),
            "other": result_with_memory(15, 100),
        }
        normalized = normalized_memory_usage(results, "spes")
        assert normalized["spes"] == pytest.approx(1.0)
        assert normalized["other"] == pytest.approx(1.5)

    def test_normalized_wmt(self):
        results = {
            "spes": result_with_memory(10, 100),
            "other": result_with_memory(10, 250),
        }
        normalized = normalized_wasted_memory_time(results, "spes")
        assert normalized["other"] == pytest.approx(2.5)

    def test_missing_reference_rejected(self):
        with pytest.raises(KeyError):
            normalized_memory_usage({"a": result_with_memory(1, 1)}, "spes")

    def test_wmt_reduction(self):
        candidate = result_with_memory(10, 50)
        baseline = result_with_memory(10, 100)
        assert wmt_reduction(candidate, baseline) == pytest.approx(0.5)


class TestPerCategoryWmt:
    def test_mean_ratio_per_category(self):
        per_function = {
            "a": FunctionStats("a", invocations=10, wasted_memory_time=20),
            "b": FunctionStats("b", invocations=10, wasted_memory_time=40),
            "c": FunctionStats("c", invocations=5, wasted_memory_time=50),
        }
        result = result_with_memory(5, 110, per_function=per_function)
        categories = {
            "a": FunctionCategory.REGULAR,
            "b": FunctionCategory.REGULAR,
            "c": FunctionCategory.POSSIBLE,
        }
        ratios = per_category_wmt_ratio(result, categories)
        assert ratios[FunctionCategory.REGULAR] == pytest.approx(3.0)
        assert ratios[FunctionCategory.POSSIBLE] == pytest.approx(10.0)

    def test_idle_never_invoked_functions_skipped(self):
        per_function = {"idle": FunctionStats("idle", invocations=0, wasted_memory_time=0)}
        result = result_with_memory(5, 0, per_function=per_function)
        assert per_category_wmt_ratio(result, {}) == {}


class TestDistributionHelpers:
    def test_empirical_cdf_default_grid(self):
        x, y = empirical_cdf([1.0, 2.0, 2.0, 3.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert y[-1] == pytest.approx(1.0)

    def test_empirical_cdf_empty(self):
        x, y = empirical_cdf([])
        assert x.size == 0 and y.size == 0

    def test_percentile_table(self):
        table = percentile_table(range(101), percentiles=(50.0, 90.0))
        assert table[50.0] == pytest.approx(50.0)
        assert table[90.0] == pytest.approx(90.0)

    def test_percentile_table_empty(self):
        assert percentile_table([], percentiles=(50.0,)) == {50.0: 0.0}


class TestComparisonTable:
    def test_render_alignment_and_values(self):
        table = ComparisonTable(title="T", columns=("a", "b"))
        table.add_row(a="x", b=1.5)
        rendered = table.render()
        assert "T" in rendered
        assert "1.5000" in rendered

    def test_missing_cells_render_empty(self):
        table = ComparisonTable(title="T", columns=("a", "b"))
        table.add_row(a="only-a")
        assert "only-a" in table.render()

    def test_build_comparison_contains_all_policies(self):
        results = {
            "spes": result_with_memory(10, 100),
            "fixed": result_with_memory(12, 150),
        }
        table = build_comparison(results)
        rendered = table.render()
        assert "spes" in rendered and "fixed" in rendered
