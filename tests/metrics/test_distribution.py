"""Tests for the distribution helpers and the LatencyStats block."""

import numpy as np
import pytest

from repro.metrics.distribution import (
    empirical_cdf,
    merge_samples,
    percentile_summary,
    percentile_table,
    tail_by_key,
)
from repro.simulation import LatencyStats


class TestPercentileSummary:
    def test_empty_samples_report_zero_for_every_percentile(self):
        summary = percentile_summary([])
        assert summary == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample_is_every_percentile(self):
        summary = percentile_summary([42.0])
        assert summary == {"p50": 42.0, "p95": 42.0, "p99": 42.0}

    def test_constant_samples_are_flat(self):
        summary = percentile_summary([7.0] * 100)
        assert set(summary.values()) == {7.0}

    def test_percentiles_are_monotone(self):
        rng = np.random.default_rng(3)
        summary = percentile_summary(rng.exponential(100.0, size=500))
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_fractional_percentile_labels(self):
        summary = percentile_summary([1.0, 2.0], percentiles=(99.9,))
        assert list(summary) == ["p99.9"]


class TestMergeSamples:
    def test_merge_of_nothing_is_empty(self):
        assert merge_samples([]).size == 0
        assert merge_samples([[], np.zeros(0)]).size == 0

    def test_merge_is_associative_for_percentiles(self):
        rng = np.random.default_rng(17)
        a, b, c = (rng.gamma(2.0, 50.0, size=n) for n in (40, 1, 200))
        left = merge_samples([merge_samples([a, b]), c])
        right = merge_samples([a, merge_samples([b, c])])
        assert percentile_summary(left) == percentile_summary(right)
        assert left.size == right.size == 241

    def test_merge_skips_empty_groups(self):
        merged = merge_samples([[1.0], [], [2.0]])
        assert sorted(merged.tolist()) == [1.0, 2.0]


class TestTailByKey:
    def test_keys_without_samples_are_omitted(self):
        tails = tail_by_key({"a": [5.0, 10.0], "b": []})
        assert set(tails) == {"a"}

    def test_tail_is_the_requested_percentile(self):
        tails = tail_by_key({"a": [1.0, 100.0]}, percentile=50.0)
        assert tails["a"] == pytest.approx(50.5)


class TestExistingHelpersStillWork:
    def test_empirical_cdf_reaches_one(self):
        x, y = empirical_cdf([1.0, 2.0, 3.0])
        assert y[-1] == 1.0 and x.size == 3

    def test_percentile_table_empty(self):
        table = percentile_table([])
        assert all(value == 0.0 for value in table.values())


# --------------------------------------------------------------------- #
# LatencyStats
# --------------------------------------------------------------------- #
def _stats(waits, per_function=None, **counts):
    waits = np.asarray(waits, dtype=float)
    defaults = dict(
        total_events=max(10, waits.size),
        warm_events=max(10, waits.size) - waits.size,
        cold_start_events=waits.size,
        delayed_events=0,
    )
    defaults.update(counts)
    return LatencyStats(
        cold_wait_ms=waits,
        per_function_wait_ms={
            key: np.asarray(values, dtype=float)
            for key, values in (per_function or {}).items()
        },
        **defaults,
    )


class TestLatencyStats:
    def test_empty_distribution_reports_zeros(self):
        stats = LatencyStats()
        assert stats.p50_ms == stats.p95_ms == stats.p99_ms == 0.0
        assert stats.mean_ms == stats.max_ms == 0.0
        assert stats.cold_event_fraction == 0.0
        assert stats.function_tail() == {}

    def test_single_event_is_every_percentile(self):
        stats = _stats([321.0])
        assert stats.p50_ms == stats.p99_ms == stats.max_ms == 321.0

    def test_all_warm_run_has_empty_distribution(self):
        stats = LatencyStats(total_events=500, warm_events=500)
        assert stats.cold_event_fraction == 0.0
        assert stats.p99_ms == 0.0
        assert stats.summary()["lat_p99_ms"] == 0.0

    def test_percentiles_are_monotone(self):
        rng = np.random.default_rng(5)
        stats = _stats(rng.exponential(250.0, size=400))
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms <= stats.max_ms

    def test_function_tail_skips_functions_without_waits(self):
        stats = _stats(
            [100.0, 200.0],
            per_function={"f1": [100.0, 200.0], "f2": []},
        )
        tail = stats.function_tail(percentile=100.0)
        assert tail == {"f1": 200.0}

    def test_summary_keys(self):
        summary = _stats([50.0]).summary()
        assert {
            "events",
            "cold_event_fraction",
            "lat_p50_ms",
            "lat_p95_ms",
            "lat_p99_ms",
            "lat_mean_ms",
            "lat_max_ms",
        } <= set(summary)


class TestLatencyStatsMerge:
    def _random_stats(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 30))
        waits = rng.gamma(2.0, 120.0, size=n)
        split = n // 2
        per_function = {}
        if split:
            per_function["f-a"] = waits[:split]
        if n - split:
            per_function["f-b"] = waits[split:]
        return LatencyStats(
            total_events=n + int(rng.integers(0, 50)),
            warm_events=int(rng.integers(0, 50)),
            cold_start_events=n,
            delayed_events=int(rng.integers(0, 5)),
            capacity_cold_events=int(rng.integers(0, 3)),
            cold_wait_ms=waits,
            per_function_wait_ms=per_function,
            total_execution_ms=float(rng.uniform(0, 1e4)),
        )

    def test_merge_across_seeds_is_associative(self):
        a, b, c = (self._random_stats(seed) for seed in (1, 2, 3))
        left = LatencyStats.merge([LatencyStats.merge([a, b]), c])
        right = LatencyStats.merge([a, LatencyStats.merge([b, c])])
        for attribute in (
            "total_events",
            "warm_events",
            "cold_start_events",
            "delayed_events",
            "capacity_cold_events",
        ):
            assert getattr(left, attribute) == getattr(right, attribute)
        assert left.total_execution_ms == pytest.approx(right.total_execution_ms)
        assert left.p50_ms == pytest.approx(right.p50_ms)
        assert left.p95_ms == pytest.approx(right.p95_ms)
        assert left.p99_ms == pytest.approx(right.p99_ms)
        assert left.function_tail() == pytest.approx(right.function_tail())

    def test_merge_with_empty_stats_is_identity_on_percentiles(self):
        stats = self._random_stats(7)
        merged = LatencyStats.merge([stats, LatencyStats()])
        assert merged.p99_ms == pytest.approx(stats.p99_ms)
        assert merged.cold_start_events == stats.cold_start_events

    def test_merge_counts_add(self):
        a, b = self._random_stats(11), self._random_stats(12)
        merged = LatencyStats.merge([a, b])
        assert merged.total_events == a.total_events + b.total_events
        assert merged.cold_wait_ms.size == a.cold_wait_ms.size + b.cold_wait_ms.size
