"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FixedKeepAlivePolicy, IdleTimeHistogram
from repro.core import SpesPolicy
from repro.core.correlation import (
    best_lagged_cor,
    co_occurrence_rate,
    lagged_co_occurrence_rate,
)
from repro.core.indeterminate import evaluate_pulsed_strategy
from repro.core.predictive import PredictiveValues
from repro.core.sequences import extract_sequences
from repro.core.slacking import merge_small_waiting_times, trim_boundary_waiting_times
from repro.simulation import simulate_policy
from repro.traces import FunctionRecord, Trace
from repro.traces.schema import TraceMetadata

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
invocation_series = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200)
waiting_time_sequences = st.lists(st.integers(min_value=1, max_value=2000), min_size=0, max_size=50)


# --------------------------------------------------------------------------- #
# Sequence extraction invariants
# --------------------------------------------------------------------------- #
class TestSequenceProperties:
    @given(series=invocation_series)
    def test_partition_of_time(self, series):
        summary = extract_sequences(series)
        covered = (
            sum(summary.active_times)
            + sum(summary.waiting_times)
            + summary.leading_idle
            + summary.trailing_idle
        )
        assert covered == len(series)

    @given(series=invocation_series)
    def test_active_numbers_sum_to_total_invocations(self, series):
        summary = extract_sequences(series)
        assert sum(summary.active_numbers) == sum(series)

    @given(series=invocation_series)
    def test_run_counts_consistent(self, series):
        summary = extract_sequences(series)
        assert len(summary.active_times) == len(summary.active_numbers)
        if summary.has_invocations:
            assert len(summary.waiting_times) == len(summary.active_times) - 1
        else:
            assert summary.waiting_times == ()

    @given(series=invocation_series)
    def test_all_waiting_and_active_times_positive(self, series):
        summary = extract_sequences(series)
        assert all(value >= 1 for value in summary.waiting_times)
        assert all(value >= 1 for value in summary.active_times)


# --------------------------------------------------------------------------- #
# Slacking invariants
# --------------------------------------------------------------------------- #
class TestSlackingProperties:
    @given(waiting_times=waiting_time_sequences)
    def test_merge_preserves_total_idle_or_reduces_count(self, waiting_times):
        merged = merge_small_waiting_times(tuple(waiting_times))
        assert len(merged) <= len(waiting_times)
        assert sum(merged) == sum(waiting_times)

    @given(waiting_times=waiting_time_sequences)
    def test_trim_removes_at_most_two(self, waiting_times):
        trimmed = trim_boundary_waiting_times(tuple(waiting_times))
        assert len(waiting_times) - len(trimmed) in (0, 2)

    @given(waiting_times=waiting_time_sequences)
    def test_merge_values_positive(self, waiting_times):
        merged = merge_small_waiting_times(tuple(waiting_times))
        assert all(value >= 1 for value in merged)


# --------------------------------------------------------------------------- #
# Correlation invariants
# --------------------------------------------------------------------------- #
class TestCorrelationProperties:
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=100
        )
    )
    def test_cor_bounded(self, data):
        target = [pair[0] for pair in data]
        candidate = [pair[1] for pair in data]
        value = co_occurrence_rate(target, candidate)
        assert 0.0 <= value <= 1.0

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=100
        ),
        lag=st.integers(0, 10),
    )
    def test_lagged_cor_bounded(self, data, lag):
        target = [pair[0] for pair in data]
        candidate = [pair[1] for pair in data]
        value = lagged_co_occurrence_rate(target, candidate, lag)
        assert 0.0 <= value <= 1.0

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=60
        ),
        max_lag=st.integers(0, 5),
    )
    def test_best_lagged_cor_is_maximum(self, data, max_lag):
        target = [pair[0] for pair in data]
        candidate = [pair[1] for pair in data]
        best, lag = best_lagged_cor(target, candidate, max_lag)
        assert lag <= max_lag
        for candidate_lag in range(max_lag + 1):
            assert best >= lagged_co_occurrence_rate(target, candidate, candidate_lag)


# --------------------------------------------------------------------------- #
# Predictive values
# --------------------------------------------------------------------------- #
class TestPredictiveProperties:
    @given(
        values=st.lists(st.integers(1, 3000), min_size=1, max_size=10),
        threshold=st.integers(1, 100),
    )
    def test_spread_rule_produces_valid_predictions(self, values, threshold):
        predictive = PredictiveValues.from_values_with_spread_rule(values, threshold)
        assert not predictive.is_empty
        if predictive.window is not None:
            low, high = predictive.window
            assert low == min(values) and high == max(values)
        else:
            assert set(predictive.discrete) == set(values)

    @given(
        values=st.lists(st.integers(1, 500), min_size=1, max_size=5),
        last=st.integers(0, 1000),
        theta=st.integers(0, 10),
    )
    def test_predicted_time_always_matches_window(self, values, last, theta):
        predictive = PredictiveValues.from_discrete(values)
        for value in values:
            assert predictive.matches(last + value, last, theta)


# --------------------------------------------------------------------------- #
# Histogram invariants
# --------------------------------------------------------------------------- #
class TestHistogramProperties:
    @given(idles=st.lists(st.integers(0, 500), min_size=1, max_size=200))
    def test_percentiles_monotone_and_in_range(self, idles):
        histogram = IdleTimeHistogram(range_minutes=240)
        histogram.observe_many(idles)
        p5 = histogram.percentile(5)
        p99 = histogram.percentile(99)
        assert 0 <= p5 <= p99 <= 240

    @given(idles=st.lists(st.integers(0, 200), min_size=1, max_size=200))
    def test_counts_partition(self, idles):
        histogram = IdleTimeHistogram(range_minutes=100)
        histogram.observe_many(idles)
        assert histogram.in_bounds_count + histogram.out_of_bounds_count == len(idles)


# --------------------------------------------------------------------------- #
# Strategy evaluation invariants
# --------------------------------------------------------------------------- #
class TestStrategyEvaluationProperties:
    @given(series=invocation_series, givenup=st.integers(1, 20))
    def test_pulsed_outcome_bounds(self, series, givenup):
        outcome = evaluate_pulsed_strategy(series, givenup)
        invoked = sum(1 for count in series if count > 0)
        assert 0 <= outcome.cold_starts <= invoked
        assert 0 <= outcome.wasted_memory <= len(series)


# --------------------------------------------------------------------------- #
# End-to-end simulation invariants
# --------------------------------------------------------------------------- #
def _trace_from_matrix(matrix):
    records = [FunctionRecord(f"f{i}", f"a{i % 3}", f"o{i % 2}") for i in range(len(matrix))]
    counts = {f"f{i}": np.asarray(row, dtype=np.int64) for i, row in enumerate(matrix)}
    duration = len(matrix[0])
    return Trace(records, counts, TraceMetadata(name="prop", duration_minutes=duration))


small_matrices = st.integers(1, 4).flatmap(
    lambda n_functions: st.integers(20, 60).flatmap(
        lambda duration: st.lists(
            st.lists(st.integers(0, 2), min_size=duration, max_size=duration),
            min_size=n_functions,
            max_size=n_functions,
        )
    )
)


class TestSimulationProperties:
    @settings(max_examples=25, deadline=None)
    @given(matrix=small_matrices, keep_alive=st.integers(1, 15))
    def test_fixed_keepalive_invariants(self, matrix, keep_alive):
        trace = _trace_from_matrix(matrix)
        result = simulate_policy(FixedKeepAlivePolicy(keep_alive), trace, warmup_minutes=0)
        invoked_minutes = sum(
            int((trace.series(fid) > 0).sum()) for fid in trace.function_ids
        )
        assert result.total_invocations == invoked_minutes
        assert 0 <= result.total_cold_starts <= result.total_invocations
        assert result.total_wasted_memory_time >= 0
        assert 0.0 <= result.emcr <= 1.0
        assert result.peak_memory_usage <= len(trace)

    @settings(max_examples=15, deadline=None)
    @given(matrix=small_matrices)
    def test_spes_invariants_without_training(self, matrix):
        trace = _trace_from_matrix(matrix)
        result = simulate_policy(SpesPolicy(), trace, warmup_minutes=0)
        for stats in result.per_function.values():
            assert 0 <= stats.cold_starts <= stats.invocations
            assert stats.wasted_memory_time <= trace.duration_minutes
        assert 0.0 <= result.overall_cold_start_rate <= 1.0

    @settings(max_examples=10, deadline=None)
    @given(matrix=small_matrices, keep_alive=st.integers(1, 10))
    def test_longer_keepalive_never_increases_cold_starts(self, matrix, keep_alive):
        trace = _trace_from_matrix(matrix)
        short = simulate_policy(FixedKeepAlivePolicy(keep_alive), trace, warmup_minutes=0)
        long = simulate_policy(FixedKeepAlivePolicy(keep_alive + 10), trace, warmup_minutes=0)
        assert long.total_cold_starts <= short.total_cold_starts
        assert long.total_wasted_memory_time >= short.total_wasted_memory_time
