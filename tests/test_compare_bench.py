"""Tests for the CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


@pytest.fixture
def bench_dir(tmp_path):
    payloads = {
        "BENCH_pr2.json": {
            "policies": {"fixed-10min": {"indexed_sim_minutes_per_second": 50000.0}},
        },
        "BENCH_pr3.json": {
            "engines": {"vectorized": {"sim_minutes_per_second": 40000.0}},
        },
        "BENCH_pr4.json": {
            # The consolidated snapshot publishes a slower single-sweep
            # vectorized row: the best value per metric must win.
            "engines": {"vectorized": {"sim_minutes_per_second": 30000.0}},
            "placement": {"hash": {"sim_minutes_per_second": 20000.0}},
        },
        "BENCH_pr6.json": {
            "ingest": {"cached": {"function_days_per_second": 15000.0}},
        },
    }
    directory = tmp_path / "output"
    directory.mkdir()
    for name, payload in payloads.items():
        (directory / name).write_text(json.dumps(payload))
    return directory


def write_baselines(tmp_path, floors):
    path = tmp_path / "baselines.json"
    path.write_text(json.dumps(floors))
    return path


class TestCollectMetrics:
    def test_collects_all_metric_families_best_value_wins(self, bench_dir):
        metrics = compare_bench.collect_metrics(bench_dir)
        assert metrics == {
            "policy/fixed-10min": 50000.0,
            "engine/vectorized": 40000.0,
            "placement/hash": 20000.0,
            "ingest/cached": 15000.0,
        }

    def test_unreadable_files_are_skipped(self, bench_dir, capsys):
        (bench_dir / "BENCH_pr9.json").write_text("{not json")
        metrics = compare_bench.collect_metrics(bench_dir)
        assert "engine/vectorized" in metrics
        assert "skipping unreadable" in capsys.readouterr().err


class TestGate:
    def test_passes_within_tolerance(self, bench_dir, tmp_path, capsys):
        baselines = write_baselines(tmp_path, {"engine/vectorized": 40000.0})
        # 40000 measured == floor: well inside the 30% band.
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines)]
        )
        assert code == 0
        assert "all tracked metrics within tolerance" in capsys.readouterr().out

    def test_fails_when_dropping_more_than_tolerance_below_floor(
        self, bench_dir, tmp_path, capsys
    ):
        # Floor 100k, measured 40k: a 60% drop must fail the 30% gate.
        baselines = write_baselines(tmp_path, {"engine/vectorized": 100000.0})
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "engine/vectorized" in out

    def test_exactly_at_the_cutoff_passes(self, bench_dir, tmp_path):
        # cutoff = floor * 0.7; measured 40000 == cutoff for floor 40000/0.7.
        baselines = write_baselines(tmp_path, {"engine/vectorized": 40000.0 / 0.7})
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines)]
        )
        assert code == 0

    def test_missing_metric_warns_but_does_not_fail(self, bench_dir, tmp_path, capsys):
        baselines = write_baselines(
            tmp_path, {"engine/vectorized": 1000.0, "engine/warp": 1000.0}
        )
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines)]
        )
        assert code == 0
        assert "MISSING" in capsys.readouterr().out

    def test_new_engine_floor_without_a_bench_row_does_not_fail(
        self, bench_dir, tmp_path, capsys
    ):
        """The event-feedback landing scenario, pinned.

        A floor checked in *before* any CI run has published the matching
        BENCH row (exactly how a new engine lands) must degrade to a MISSING
        warning — and a BENCH row published before its floor exists must
        stay an UNTRACKED hint — so the gate never blocks the PR that
        introduces either side.
        """
        baselines = write_baselines(
            tmp_path,
            {"engine/vectorized": 1000.0, "engine/event-feedback": 2000.0},
        )
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine/event-feedback" in out and "MISSING" in out
        assert "placement/hash" in out and "UNTRACKED" in out

    def test_untracked_metrics_are_listed_as_hints(self, bench_dir, tmp_path, capsys):
        baselines = write_baselines(tmp_path, {"engine/vectorized": 1000.0})
        compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines)]
        )
        out = capsys.readouterr().out
        assert "UNTRACKED" in out and "placement/hash" in out

    def test_empty_bench_dir_is_not_a_failure(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = compare_bench.main(["--bench-dir", str(empty)])
        assert code == 0
        assert "no BENCH_pr*.json" in capsys.readouterr().out

    def test_update_rewrites_the_floors(self, bench_dir, tmp_path):
        baselines = tmp_path / "baselines.json"
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines), "--update"]
        )
        assert code == 0
        floors = json.loads(baselines.read_text())
        assert floors["engine/vectorized"] == pytest.approx(40000.0 / 5.0)

    def test_update_merges_instead_of_deleting_unmeasured_floors(
        self, bench_dir, tmp_path
    ):
        # A partial bench run must not wipe the floors it didn't measure.
        baselines = write_baselines(
            tmp_path, {"engine/warp": 123.0, "engine/vectorized": 1.0}
        )
        code = compare_bench.main(
            ["--bench-dir", str(bench_dir), "--baselines", str(baselines), "--update"]
        )
        assert code == 0
        floors = json.loads(baselines.read_text())
        assert floors["engine/warp"] == 123.0  # kept
        assert floors["engine/vectorized"] == pytest.approx(40000.0 / 5.0)  # refreshed


class TestCheckedInBaselines:
    def test_repo_baselines_cover_the_published_metric_families(self):
        path = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines.json"
        floors = json.loads(path.read_text())
        families = {name.split("/", 1)[0] for name in floors}
        assert families == {"engine", "policy", "placement", "ingest"}
        assert all(value > 0 for value in floors.values())
        # Every engine and placement strategy the benches publish has a floor.
        assert {
            "engine/vectorized",
            "engine/event",
            "engine/event-feedback",
            "engine/reference",
        } <= set(floors)
        assert {
            "placement/hash",
            "placement/least-loaded",
            "placement/correlation-aware",
            "placement/least-loaded+migration",
        } <= set(floors)
        # The Azure ingestion path tracks both sides of the cache boundary.
        assert {"ingest/cold", "ingest/cached"} <= set(floors)


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
