"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import (
    AzureTraceGenerator,
    FunctionRecord,
    GeneratorProfile,
    Trace,
    TriggerType,
    split_trace,
)
from repro.traces.schema import TraceMetadata


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-built 3-function, 20-minute trace with known properties.

    * ``periodic`` fires every 5 minutes.
    * ``chained`` fires 2 minutes after ``periodic``.
    * ``rare`` fires once.
    """
    duration = 20
    periodic = np.zeros(duration, dtype=np.int64)
    periodic[::5] = 1
    chained = np.zeros(duration, dtype=np.int64)
    chained[2::5] = 1
    rare = np.zeros(duration, dtype=np.int64)
    rare[7] = 1
    records = [
        FunctionRecord("periodic", "app-1", "owner-1", TriggerType.TIMER),
        FunctionRecord("chained", "app-1", "owner-1", TriggerType.QUEUE),
        FunctionRecord("rare", "app-2", "owner-2", TriggerType.HTTP),
    ]
    counts = {"periodic": periodic, "chained": chained, "rare": rare}
    metadata = TraceMetadata(name="tiny", duration_minutes=duration)
    return Trace(records, counts, metadata)


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A small synthetic trace shared (read-only) across the test session."""
    profile = GeneratorProfile.small(seed=99)
    return AzureTraceGenerator(profile).generate()


@pytest.fixture(scope="session")
def small_split(small_trace):
    """Training / simulation split of the small synthetic trace."""
    return split_trace(small_trace, training_days=2.0)
