"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    @pytest.mark.parametrize("command", ["compare", "analyze", "tradeoff", "ablation"])
    def test_commands_accept_common_arguments(self, command):
        parser = build_parser()
        args = parser.parse_args([command, "--functions", "50", "--seed", "9"])
        assert args.functions == 50
        assert args.seed == 9
        assert callable(args.handler)


class TestExecution:
    TINY = ["--functions", "30", "--seed", "5", "--days", "3", "--training-days", "2"]

    def test_analyze_runs_on_tiny_workload(self, capsys):
        exit_code = main(["analyze"] + self.TINY)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Trigger proportions" in captured.out

    def test_compare_runs_on_tiny_workload(self, capsys):
        exit_code = main(["compare"] + self.TINY)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "spes" in captured.out
        assert "fixed-10min" in captured.out
