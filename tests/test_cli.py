"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    @pytest.mark.parametrize("command", ["compare", "analyze", "tradeoff", "ablation"])
    def test_commands_accept_common_arguments(self, command):
        parser = build_parser()
        args = parser.parse_args([command, "--functions", "50", "--seed", "9"])
        assert args.functions == 50
        assert args.seed == 9
        assert callable(args.handler)


class TestSweepParser:
    def test_sweep_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["sweep"])
        assert args.seeds == [2024]
        assert args.workers == 0
        assert args.cache_dir is None
        assert "spes" in args.policies

    def test_sweep_accepts_all_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "sweep",
                "--functions", "40",
                "--seeds", "1", "2",
                "--workers", "4",
                "--policies", "spes", "defuse",
                "--cache-dir", "/tmp/cache",
            ]
        )
        assert args.seeds == [1, 2]
        assert args.workers == 4
        assert args.policies == ["spes", "defuse"]
        assert args.cache_dir == "/tmp/cache"

    def test_sweep_accepts_placement(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--scenario", "hot-shard", "--placement", "least-loaded"]
        )
        assert args.scenario == "hot-shard"
        assert args.placement == "least-loaded"

    def test_placement_without_cluster_scenario_exits_with_error(self, capsys):
        exit_code = main(["sweep", "--placement", "least-loaded"])
        assert exit_code == 2
        assert "requires a scenario" in capsys.readouterr().err


class TestExecution:
    TINY = ["--functions", "30", "--seed", "5", "--days", "3", "--training-days", "2"]

    def test_analyze_runs_on_tiny_workload(self, capsys):
        exit_code = main(["analyze"] + self.TINY)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Trigger proportions" in captured.out

    def test_compare_runs_on_tiny_workload(self, capsys):
        exit_code = main(["compare"] + self.TINY)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "spes" in captured.out
        assert "fixed-10min" in captured.out

    def test_sweep_runs_on_tiny_workload(self, capsys, tmp_path):
        arguments = [
            "sweep",
            "--functions", "25",
            "--days", "2",
            "--training-days", "1.5",
            "--seeds", "5",
            "--workers", "2",
            "--policies", "spes", "fixed-10min",
            "--cache-dir", str(tmp_path),
        ]
        exit_code = main(arguments)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Policy suite (seed 5)" in captured.out
        assert "2 workers" in captured.out
        assert "0 hit(s)" in captured.out

        # A second identical sweep is served from the on-disk cache.
        exit_code = main(arguments)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2 hit(s), 0 miss(es)" in captured.out

    def test_sweep_rejects_unknown_policy(self, capsys):
        exit_code = main(
            ["sweep", "--functions", "25", "--days", "2", "--training-days", "1.5",
             "--policies", "spes", "warp-drive"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown suite policy 'warp-drive'" in captured.err

    def test_sweep_rejects_negative_workers(self, capsys):
        exit_code = main(
            ["sweep", "--functions", "25", "--days", "2", "--training-days", "1.5",
             "--policies", "spes", "--workers", "-3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "workers must be non-negative" in captured.err


class TestScenarioCommands:
    TINY_SWEEP = [
        "sweep", "--functions", "25", "--days", "2", "--training-days", "1.5",
        "--seeds", "5",
    ]

    def test_scenarios_lists_the_catalog(self, capsys):
        exit_code = main(["scenarios"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("azure", "diurnal", "bursty", "drift", "flash-crowd",
                     "capacity-squeeze"):
            assert name in captured.out
        assert "squeeze=2.5" in captured.out  # parameters are enumerated

    def test_capacity_squeeze_sweep_reports_capacity_effects(self, capsys):
        exit_code = main(
            self.TINY_SWEEP
            + ["--policies", "spes", "fixed-10min", "--scenario", "capacity-squeeze",
               "--rq-tables"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "evictions" in captured.out
        assert "cap_cold_starts" in captured.out
        assert "Capacity effects" in captured.out
        assert "scenario capacity-squeeze" in captured.out

    def test_scenario_param_overrides_are_parsed(self, capsys):
        exit_code = main(
            self.TINY_SWEEP
            + ["--policies", "fixed-10min", "--scenario", "capacity-squeeze",
               "--scenario-param", "n_nodes=2", "--scenario-param", "squeeze=3.5"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "over 2 node(s)" in captured.out

    def test_unknown_scenario_fails_with_exit_code_2(self, capsys):
        exit_code = main(
            self.TINY_SWEEP + ["--policies", "fixed-10min", "--scenario", "warp"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown scenario" in captured.err

    def test_no_cache_bypasses_the_cache_dir(self, capsys, tmp_path):
        arguments = self.TINY_SWEEP + [
            "--policies", "fixed-10min",
            "--cache-dir", str(tmp_path),
            "--no-cache",
        ]
        exit_code = main(arguments)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cache:" not in captured.out
        assert not list(tmp_path.glob("*.pkl"))


class TestStreamingAndFeedbackCommands:
    TINY_SWEEP = [
        "sweep", "--functions", "25", "--days", "2", "--training-days", "1.5",
        "--seeds", "5",
    ]

    def test_sweep_parses_feedback_engine_and_streaming(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--engine", "event-feedback", "--streaming"]
        )
        assert args.engine == "event-feedback"
        assert args.streaming is True
        assert build_parser().parse_args(["sweep"]).streaming is False

    def test_streaming_feedback_sweep_runs_end_to_end(self, capsys):
        arguments = self.TINY_SWEEP + [
            "--policies", "fixed-10min-indexed", "latency-keepalive",
            "--scenario", "load-ramp",
            "--engine", "event-feedback", "--streaming",
        ]
        exit_code = main(arguments)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "lat_p99_ms" in captured.out
        assert "latency-keepalive" in captured.out
        assert "engine event-feedback, streaming" in captured.out

    def test_latency_rq_runs_on_a_tiny_shape(self, capsys):
        exit_code = main([
            "latency-rq", "--functions", "25", "--days", "2",
            "--training-days", "1.5", "--seeds", "5",
            "--scenarios", "seasonal-mix",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "RQ5" in captured.out
        assert "seasonal-mix" in captured.out
        assert "p99_ms" in captured.out

    def test_latency_rq_rejects_unknown_scenario(self, capsys):
        exit_code = main([
            "latency-rq", "--functions", "25", "--days", "2",
            "--training-days", "1.5", "--scenarios", "warp",
        ])
        assert exit_code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_with_cores_reports_slowdown_columns(self, capsys):
        arguments = self.TINY_SWEEP + [
            "--policies", "fixed-10min-indexed",
            "--scenario", "cpu-starved",
            "--engine", "event",
            "--cores", "2", "--scheduler", "srtf", "--slo-ms", "500",
        ]
        exit_code = main(arguments)
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "slowdown_p50" in captured.out
        assert "slo_viol_pct" in captured.out
        assert "cores 2 (srtf)" in captured.out

    def test_sweep_rejects_cores_off_the_event_engines(self, capsys):
        exit_code = main(self.TINY_SWEEP + ["--cores", "2"])
        assert exit_code == 2
        assert "event" in capsys.readouterr().err

    def test_slowdown_rq_runs_on_a_tiny_shape(self, capsys):
        exit_code = main([
            "slowdown-rq", "--functions", "25", "--days", "2",
            "--training-days", "1.5", "--seeds", "5",
            "--scenarios", "cpu-starved",
            "--schedulers", "fifo", "--cores", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "RQ6" in captured.out
        assert "cpu-starved" in captured.out
        assert "slowdown_p99" in captured.out
        assert "slo_viol_pct" in captured.out

    def test_slowdown_rq_rejects_unknown_scenario(self, capsys):
        exit_code = main([
            "slowdown-rq", "--functions", "25", "--days", "2",
            "--training-days", "1.5", "--scenarios", "warp",
        ])
        assert exit_code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestCacheCommand:
    def _populate(self, directory):
        from repro.experiments import ResultCache
        from repro.simulation import SimulationResult

        cache = ResultCache(directory)
        cache.put("entry", SimulationResult(policy_name="p", duration_minutes=1))
        return cache

    def test_prune_days_removes_old_entries(self, capsys, tmp_path):
        import os
        import time

        self._populate(tmp_path)
        stale = tmp_path / "entry.pkl"
        two_days_ago = time.time() - 2 * 86400
        os.utime(stale, (two_days_ago, two_days_ago))
        exit_code = main(
            ["cache", "--cache-dir", str(tmp_path), "--prune-days", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "pruned 1 entry" in captured.out
        assert not stale.exists()

    def test_prune_keeps_fresh_entries(self, capsys, tmp_path):
        self._populate(tmp_path)
        exit_code = main(
            ["cache", "--cache-dir", str(tmp_path), "--prune-days", "7"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "pruned 0 entries" in captured.out
        assert (tmp_path / "entry.pkl").exists()

    def test_missing_cache_dir_is_an_error(self, capsys, tmp_path):
        exit_code = main(
            ["cache", "--cache-dir", str(tmp_path / "nope"), "--prune-days", "1"]
        )
        assert exit_code == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_prune_days_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "--cache-dir", "/tmp/x"])


class TestConfigCommand:
    def test_config_prints_canonical_spec_and_digest(self, capsys):
        import json

        exit_code = main(["config", "--engine", "event", "--shards", "4"])
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spec"]["engine"] == "event"
        assert document["spec"]["shards"] == 4
        assert len(document["spec_digest"]) == 64
        assert isinstance(document["engine_version"], int)

    def test_config_shares_sweep_flag_semantics(self, capsys):
        import json

        exit_code = main(
            ["config", "--streaming", "--memory-mode", "mb", "--seeds", "1", "2"]
        )
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spec"]["streaming"] is True
        assert document["spec"]["memory_mode"] == "mb"
        assert document["seeds"] == [1, 2]

    def test_config_rejects_invalid_combination_like_sweep(self, capsys):
        exit_code = main(["config", "--engine", "reference", "--memory-mode", "mb"])
        assert exit_code == 2
        assert "mask-based" in capsys.readouterr().err

    def test_config_cache_keys_lists_static_cells(self, capsys):
        import json

        exit_code = main(
            [
                "config",
                "--functions", "6",
                "--days", "2",
                "--training-days", "1",
                "--seeds", "11",
                "--policies", "spes", "fixed-10min",
                "--cache-keys",
            ]
        )
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document["cache_keys"]) == {"seed11/spes", "seed11/fixed-10min"}
        assert all(len(key) == 64 for key in document["cache_keys"].values())

    def test_config_cache_keys_notes_faascache_omission(self, capsys):
        import json

        exit_code = main(
            [
                "config",
                "--functions", "6",
                "--days", "2",
                "--training-days", "1",
                "--policies", "spes", "faascache",
                "--cache-keys",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "faascache omitted" in captured.err
        assert "faascache" not in json.loads(captured.out)["cache_keys"]


class TestManifestFlags:
    SWEEP_ARGS = [
        "sweep",
        "--scenario", "azure2019-fixture",
        "--scenario-param", "population=16",
        "--functions", "8",
        "--days", "2",
        "--training-days", "1",
        "--seeds", "2024",
        "--policies", "spes", "fixed-10min",
    ]

    def test_sweep_records_then_replays_a_manifest(self, capsys, tmp_path):
        manifest_path = tmp_path / "run.json"
        exit_code = main(self.SWEEP_ARGS + ["--manifest", str(manifest_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "manifest: wrote" in captured.out
        assert manifest_path.exists()

        exit_code = main(["sweep", "--from-manifest", str(manifest_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "result fingerprint(s) identical" in captured.out

    def test_from_manifest_rejects_engine_version_mismatch(self, capsys, tmp_path):
        import json

        manifest_path = tmp_path / "run.json"
        assert main(self.SWEEP_ARGS + ["--manifest", str(manifest_path)]) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        manifest["engine_version"] -= 1
        manifest_path.write_text(json.dumps(manifest))
        exit_code = main(["sweep", "--from-manifest", str(manifest_path)])
        assert exit_code == 2
        assert "engine version" in capsys.readouterr().err

    def test_from_manifest_rejects_trace_divergence(self, capsys, tmp_path):
        import json

        manifest_path = tmp_path / "run.json"
        assert main(self.SWEEP_ARGS + ["--manifest", str(manifest_path)]) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        manifest["trace_fingerprints"]["seed2024"][0] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        exit_code = main(["sweep", "--from-manifest", str(manifest_path)])
        assert exit_code == 2
        assert "trace fingerprints diverge" in capsys.readouterr().err
