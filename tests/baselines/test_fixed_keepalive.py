"""Tests for the fixed keep-alive baseline."""

import pytest

from repro.baselines import FixedKeepAlivePolicy


class TestFixedKeepAlive:
    def test_name_reflects_window(self):
        assert FixedKeepAlivePolicy(10).name == "fixed-10min"

    def test_function_stays_resident_within_window(self):
        policy = FixedKeepAlivePolicy(3)
        assert "f" in policy.on_minute(0, {"f": 1})
        assert "f" in policy.on_minute(1, {})
        assert "f" in policy.on_minute(2, {})
        assert "f" not in policy.on_minute(3, {})

    def test_invocation_refreshes_expiry(self):
        policy = FixedKeepAlivePolicy(2)
        policy.on_minute(0, {"f": 1})
        policy.on_minute(1, {"f": 1})
        assert "f" in policy.on_minute(2, {})
        assert "f" not in policy.on_minute(3, {})

    def test_zero_window_evicts_immediately(self):
        policy = FixedKeepAlivePolicy(0)
        assert policy.on_minute(0, {"f": 1}) == set()

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            FixedKeepAlivePolicy(-1)

    def test_reset_clears_state(self):
        policy = FixedKeepAlivePolicy(5)
        policy.on_minute(0, {"f": 1})
        policy.reset()
        assert policy.on_minute(1, {}) == set()

    def test_multiple_functions_tracked_independently(self):
        policy = FixedKeepAlivePolicy(2)
        policy.on_minute(0, {"a": 1})
        resident = policy.on_minute(1, {"b": 1})
        assert resident == {"a", "b"}
        assert policy.on_minute(2, {}) == {"b"}
