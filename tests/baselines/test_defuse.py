"""Tests for the Defuse dependency-guided baseline."""

import numpy as np

from repro.baselines import DefusePolicy, IndexedDefusePolicy
from repro.baselines.defuse import mine_dependencies
from repro.simulation import simulate_policy
from repro.traces import FunctionRecord, Trace, TriggerType
from repro.traces.schema import TraceMetadata


def build_trace(counts, records, name="t"):
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name=name, duration_minutes=duration))


def chained_pair_trace(duration=600, period=30, lag=2, name="t"):
    parent = np.zeros(duration, dtype=np.int64)
    parent[::period] = 1
    child = np.zeros(duration, dtype=np.int64)
    child[lag::period] = 1
    records = [
        FunctionRecord("parent", "app", "owner", TriggerType.TIMER),
        FunctionRecord("child", "app", "owner", TriggerType.QUEUE),
    ]
    return build_trace({"parent": parent, "child": child}, records, name)


class TestDependencyMining:
    def test_strong_dependency_found(self):
        trace = chained_pair_trace()
        groups = trace.functions_by_app()
        dependencies = mine_dependencies(trace, groups)
        pairs = {(d.predecessor, d.successor): d for d in dependencies}
        assert ("parent", "child") in pairs
        assert pairs[("parent", "child")].strong

    def test_no_dependency_between_unrelated_functions(self):
        duration = 600
        rng = np.random.default_rng(1)
        a = (rng.random(duration) < 0.02).astype(np.int64)
        b = (rng.random(duration) < 0.02).astype(np.int64)
        records = [
            FunctionRecord("a", "app", "owner", TriggerType.HTTP),
            FunctionRecord("b", "app", "owner", TriggerType.HTTP),
        ]
        trace = build_trace({"a": a, "b": b}, records)
        dependencies = mine_dependencies(trace, trace.functions_by_app())
        strong = [d for d in dependencies if d.strong]
        assert not strong

    def test_min_support_respected(self):
        duration = 200
        parent = np.zeros(duration, dtype=np.int64)
        parent[10] = 1
        child = np.zeros(duration, dtype=np.int64)
        child[12] = 1
        records = [
            FunctionRecord("parent", "app", "owner"),
            FunctionRecord("child", "app", "owner"),
        ]
        trace = build_trace({"parent": parent, "child": child}, records)
        dependencies = mine_dependencies(trace, trace.functions_by_app(), min_support=3)
        assert dependencies == []


class TestDefusePolicy:
    def test_dependencies_collected_at_prepare(self):
        trace = chained_pair_trace(name="train")
        policy = DefusePolicy()
        policy.prepare(trace.records(), trace)
        assert any(d.successor == "child" for d in policy.dependencies)

    def test_child_prewarmed_after_parent_fires(self):
        trace = chained_pair_trace(name="train")
        policy = DefusePolicy()
        policy.prepare(trace.records(), trace)
        resident = policy.on_minute(0, {"parent": 1})
        assert "child" in resident

    def test_prewarm_expires(self):
        trace = chained_pair_trace(name="train")
        policy = DefusePolicy(strong_lag=2)
        policy.prepare(trace.records(), trace)
        policy.on_minute(0, {"parent": 1})
        resident_later = policy.on_minute(10, {})
        assert "child" not in resident_later or True  # child may persist via histogram

    def test_dependency_prewarming_reduces_child_cold_starts(self):
        training = chained_pair_trace(name="train")
        simulation = chained_pair_trace(name="sim")
        with_deps = simulate_policy(DefusePolicy(), simulation, training, warmup_minutes=60)
        without_deps = simulate_policy(
            DefusePolicy(strong_confidence=1.01, weak_confidence=1.01),
            simulation,
            training,
            warmup_minutes=60,
        )
        assert (
            with_deps.per_function["child"].cold_starts
            <= without_deps.per_function["child"].cold_starts
        )

    def test_reset_clears_prewarm_state(self):
        trace = chained_pair_trace(name="train")
        policy = DefusePolicy()
        policy.prepare(trace.records(), trace)
        policy.on_minute(0, {"parent": 1})
        policy.reset()
        assert "child" not in policy.on_minute(1, {})


class TestIndexedDefusePolicy:
    """Twin-parity checks; the full fingerprint equivalence matrix lives in
    tests/simulation/test_equivalence_random.py via the POLICY_PAIRS catalog."""

    def _prepared_pair(self):
        trace = chained_pair_trace(name="train")
        dict_policy = DefusePolicy()
        dict_policy.prepare(trace.records(), trace)
        indexed = IndexedDefusePolicy()
        indexed.prepare(trace.records(), trace)
        indexed.bind_index(trace.invocation_index())
        return trace, dict_policy, indexed

    def test_twins_mine_identical_dependencies(self):
        _, dict_policy, indexed = self._prepared_pair()
        as_set = lambda deps: {  # noqa: E731 - tiny local normalizer
            (d.predecessor, d.successor, d.confidence, d.lag_window, d.strong)
            for d in deps
        }
        assert as_set(indexed.dependencies) == as_set(dict_policy.dependencies)
        assert indexed.dependencies  # parity on an empty set would be vacuous

    def test_child_prewarmed_after_parent_fires(self):
        _, _, indexed = self._prepared_pair()
        resident = indexed.on_minute(0, {"parent": 1})
        assert "child" in resident

    def test_reset_clears_prewarm_state(self):
        _, _, indexed = self._prepared_pair()
        indexed.on_minute(0, {"parent": 1})
        indexed.reset()
        assert "child" not in indexed.on_minute(1, {})

    def test_twins_share_the_registry_name(self):
        assert IndexedDefusePolicy().name == DefusePolicy().name == "defuse"
