"""Tests for the idle-time histogram."""

import pytest

from repro.baselines import IdleTimeHistogram


class TestIdleTimeHistogram:
    def test_percentiles_of_constant_idle(self):
        histogram = IdleTimeHistogram(range_minutes=240)
        histogram.observe_many([60] * 20)
        assert histogram.percentile(5) == 60
        assert histogram.percentile(99) == 60
        assert histogram.prewarm_window == 60
        assert histogram.keep_alive_window == 60

    def test_percentiles_of_spread_idle(self):
        histogram = IdleTimeHistogram()
        histogram.observe_many(list(range(1, 101)))
        assert histogram.percentile(5) == pytest.approx(5, abs=1)
        assert histogram.percentile(99) == pytest.approx(99, abs=1)

    def test_out_of_bounds_counted_separately(self):
        histogram = IdleTimeHistogram(range_minutes=100)
        histogram.observe(50)
        histogram.observe(150)
        assert histogram.in_bounds_count == 1
        assert histogram.out_of_bounds_count == 1

    def test_representative_requires_min_samples(self):
        histogram = IdleTimeHistogram(min_samples=10)
        histogram.observe_many([5] * 9)
        assert not histogram.is_representative
        histogram.observe(5)
        assert histogram.is_representative

    def test_representative_rejects_mostly_oob(self):
        histogram = IdleTimeHistogram(range_minutes=10, min_samples=5, max_oob_fraction=0.5)
        histogram.observe_many([5] * 5)
        histogram.observe_many([100] * 20)
        assert not histogram.is_representative

    def test_empty_histogram_defaults(self):
        histogram = IdleTimeHistogram(range_minutes=240)
        assert histogram.percentile(50) == 240
        assert not histogram.is_representative

    def test_negative_idle_rejected(self):
        histogram = IdleTimeHistogram()
        with pytest.raises(ValueError):
            histogram.observe(-1)

    def test_keep_alive_window_at_least_one(self):
        histogram = IdleTimeHistogram()
        histogram.observe_many([0] * 20)
        assert histogram.keep_alive_window >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"range_minutes": 0},
            {"head_percentile": 50, "tail_percentile": 10},
            {"min_samples": 0},
            {"max_oob_fraction": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IdleTimeHistogram(**kwargs)

    def test_as_array_is_copy(self):
        histogram = IdleTimeHistogram(range_minutes=10)
        histogram.observe(3)
        array = histogram.as_array()
        array[3] = 99
        assert histogram.as_array()[3] == 1
