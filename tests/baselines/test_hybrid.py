"""Tests for the hybrid histogram policies (function and application grained)."""

import numpy as np

from repro.baselines import HybridApplicationPolicy, HybridFunctionPolicy
from repro.simulation import simulate_policy
from repro.traces import FunctionRecord, Trace, TriggerType
from repro.traces.schema import TraceMetadata


def build_trace(counts, records, name="t"):
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name=name, duration_minutes=duration))


def periodic_series(duration, period, phase=0):
    series = np.zeros(duration, dtype=np.int64)
    series[phase::period] = 1
    return series


class TestHybridFunction:
    def test_histogram_seeded_from_training(self):
        records = [FunctionRecord("f", "a", "o", TriggerType.TIMER)]
        training = build_trace({"f": periodic_series(600, 30)}, records, "train")
        policy = HybridFunctionPolicy()
        policy.prepare(records, training)
        histogram = policy.unit_histogram("f")
        assert histogram is not None
        assert histogram.percentile(50) == 30

    def test_periodic_function_prewarmed_not_kept(self):
        # With a sharp idle-time histogram, the policy unloads after execution
        # and re-loads shortly before the next predicted invocation, so a
        # periodic function sees warm starts with little wasted memory.
        records = [FunctionRecord("f", "a", "o", TriggerType.TIMER)]
        duration = 1200
        series = periodic_series(duration, 60)
        training = build_trace({"f": series}, records, "train")
        simulation = build_trace({"f": series}, records, "sim")
        result = simulate_policy(HybridFunctionPolicy(), simulation, training, warmup_minutes=120)
        stats = result.per_function["f"]
        assert stats.cold_start_rate < 0.1
        assert stats.wasted_memory_time < duration * 0.2

    def test_uncertain_function_uses_fallback_keepalive(self):
        records = [FunctionRecord("f", "a", "o", TriggerType.HTTP)]
        duration = 500
        series = np.zeros(duration, dtype=np.int64)
        series[[10, 400]] = 1
        simulation = build_trace({"f": series}, records, "sim")
        policy = HybridFunctionPolicy(uncertain_keep_alive_minutes=50)
        result = simulate_policy(policy, simulation, None, warmup_minutes=0)
        stats = result.per_function["f"]
        # Second invocation is 390 minutes later, beyond the 50-minute
        # fallback, so both invocations are cold; memory is bounded by the
        # fallback window.
        assert stats.cold_starts == 2
        assert stats.wasted_memory_time <= 100

    def test_unknown_function_handled_online(self):
        records = [FunctionRecord("f", "a", "o")]
        simulation = build_trace({"f": periodic_series(100, 10)}, records, "sim")
        policy = HybridFunctionPolicy()
        result = simulate_policy(policy, simulation, None, warmup_minutes=0)
        assert result.per_function["f"].invocations == 10


class TestHybridApplication:
    def test_unit_is_application(self):
        records = [
            FunctionRecord("f1", "app", "o", TriggerType.TIMER),
            FunctionRecord("f2", "app", "o", TriggerType.QUEUE),
        ]
        policy = HybridApplicationPolicy()
        policy.prepare(records, None)
        assert policy.unit_members("app") == {"f1", "f2"}

    def test_sibling_invocation_keeps_whole_app_resident(self):
        records = [
            FunctionRecord("f1", "app", "o", TriggerType.TIMER),
            FunctionRecord("f2", "app", "o", TriggerType.QUEUE),
        ]
        policy = HybridApplicationPolicy()
        policy.prepare(records, None)
        resident = policy.on_minute(0, {"f1": 1})
        assert resident == {"f1", "f2"}

    def test_application_grouping_avoids_sibling_cold_starts(self):
        duration = 600
        f1 = periodic_series(duration, 20, phase=0)
        f2 = periodic_series(duration, 20, phase=2)
        records = [
            FunctionRecord("f1", "app", "o", TriggerType.TIMER),
            FunctionRecord("f2", "app", "o", TriggerType.QUEUE),
        ]
        training = build_trace({"f1": f1, "f2": f2}, records, "train")
        simulation = build_trace({"f1": f1, "f2": f2}, records, "sim")
        ha_result = simulate_policy(HybridApplicationPolicy(), simulation, training, warmup_minutes=60)
        assert ha_result.per_function["f2"].cold_start_rate < 0.2

    def test_application_grouping_helps_rare_sibling_cold_starts(self):
        duration = 600
        f1 = periodic_series(duration, 10)
        f2 = np.zeros(duration, dtype=np.int64)
        f2[[5, 300]] = 1
        records = [
            FunctionRecord("f1", "app", "o", TriggerType.TIMER),
            FunctionRecord("f2", "app", "o", TriggerType.HTTP),
        ]
        training = build_trace({"f1": f1, "f2": f2}, records, "train")
        simulation = build_trace({"f1": f1, "f2": f2}, records, "sim")
        hf = simulate_policy(HybridFunctionPolicy(), simulation, training, warmup_minutes=60)
        ha = simulate_policy(HybridApplicationPolicy(), simulation, training, warmup_minutes=60)
        # Grouping lets the rare sibling ride on the frequent function's
        # residency, so it sees no more cold starts than under HF.
        assert (
            ha.per_function["f2"].cold_starts <= hf.per_function["f2"].cold_starts
        )
