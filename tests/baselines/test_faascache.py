"""Tests for the FaaSCache (GDSF) baseline and its index-native twin."""

import zlib

import numpy as np
import pytest

from repro.baselines import FaasCachePolicy, IndexedFaasCachePolicy
from repro.simulation import simulate_policy
from repro.traces import FunctionRecord, Trace
from repro.traces.schema import TraceMetadata


def prepared_policy(capacity, n_functions=10):
    policy = FaasCachePolicy(capacity=capacity)
    records = [FunctionRecord(f"f{i}", "a", "o") for i in range(n_functions)]
    policy.prepare(records)
    return policy


def prepared_indexed_policy(capacity, n_functions=10, duration=20, **kwargs):
    """An IndexedFaasCachePolicy prepared *and bound* to a tiny trace.

    The indexed contract needs a function-index space; the dict-API bridge
    (``on_minute``) then drives it exactly like the dict twin in the unit
    tests below.
    """
    records = [FunctionRecord(f"f{i}", "a", "o") for i in range(n_functions)]
    counts = {f"f{i}": np.zeros(duration, dtype=np.int64) for i in range(n_functions)}
    trace = Trace(records, counts, TraceMetadata(name="tiny", duration_minutes=duration))
    policy = IndexedFaasCachePolicy(capacity=capacity, **kwargs)
    policy.prepare(records)
    policy.bind_index(trace.invocation_index())
    return policy


class TestFaasCache:
    def test_everything_kept_until_capacity(self):
        policy = prepared_policy(capacity=3)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert resident == {"f0", "f1", "f2"}

    def test_eviction_when_capacity_exceeded(self):
        policy = prepared_policy(capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert len(resident) == 2
        assert "f2" in resident

    def test_frequency_protects_hot_functions(self):
        policy = prepared_policy(capacity=2)
        for minute in range(5):
            policy.on_minute(minute, {"hot": 1})
        policy.on_minute(5, {"cold1": 1})
        resident = policy.on_minute(6, {"cold2": 1})
        assert "hot" in resident

    def test_clock_advances_on_eviction(self):
        policy = prepared_policy(capacity=1)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        assert policy._clock > 0  # eviction happened and the clock moved

    def test_never_evicts_below_capacity(self):
        policy = prepared_policy(capacity=100)
        for minute in range(10):
            policy.on_minute(minute, {f"f{minute}": 1})
        assert len(policy.resident_functions) == 10

    def test_default_capacity_derived_from_population(self):
        policy = FaasCachePolicy()
        records = [FunctionRecord(f"f{i}", "a", "o") for i in range(50)]
        policy.prepare(records)
        assert policy.capacity == 5

    def test_custom_sizes_respected(self):
        policy = FaasCachePolicy(capacity=3, sizes={"big": 3.0})
        policy.prepare([FunctionRecord("big", "a", "o"), FunctionRecord("small", "a", "o")])
        policy.on_minute(0, {"big": 1})
        resident = policy.on_minute(1, {"small": 1})
        assert len(resident) <= 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FaasCachePolicy(capacity=0)

    def test_reset_clears_cache(self):
        policy = prepared_policy(capacity=5)
        policy.on_minute(0, {"f0": 1})
        policy.reset()
        assert policy.resident_functions == set()


class TestIndexedFaasCache:
    """The index-native port behaves exactly like the dict twin."""

    def test_shares_the_policy_name(self):
        assert IndexedFaasCachePolicy().name == FaasCachePolicy().name

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            IndexedFaasCachePolicy(capacity=0)

    def test_default_capacity_derived_from_population(self):
        policy = prepared_indexed_policy(capacity=None, n_functions=50)
        assert policy.capacity == 5

    @pytest.mark.parametrize("scenario", ["basic", "hot", "sizes"])
    def test_minute_by_minute_lockstep_with_the_dict_twin(self, scenario):
        kwargs = {"sizes": {"f0": 3.0}} if scenario == "sizes" else {}
        capacity = {"basic": 2, "hot": 2, "sizes": 3}[scenario]
        dict_policy = FaasCachePolicy(capacity=capacity, **kwargs)
        dict_policy.prepare([FunctionRecord(f"f{i}", "a", "o") for i in range(10)])
        indexed = prepared_indexed_policy(capacity=capacity, **kwargs)

        # crc32, not hash(): PYTHONHASHSEED must not pick the workload.
        rng = np.random.default_rng(zlib.crc32(scenario.encode()))
        for minute in range(60):
            if scenario == "hot" and minute % 2 == 0:
                invocations = {"f0": 1}
            else:
                chosen = rng.choice(10, size=int(rng.integers(0, 4)), replace=False)
                invocations = {f"f{i}": int(rng.integers(1, 4)) for i in chosen}
            assert dict_policy.on_minute(minute, invocations) == indexed.on_minute(
                minute, invocations
            ), f"diverged at minute {minute}"

    def test_eviction_order_matches_heap_semantics(self):
        # Equal priorities break ties on push order: the earliest-updated
        # function is evicted first, exactly like the heap's counter.
        policy = prepared_indexed_policy(capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert resident == {"f1", "f2"}  # f0 pushed first among the ties

    def test_reset_clears_cache(self):
        policy = prepared_indexed_policy(capacity=5)
        policy.on_minute(0, {"f0": 1})
        policy.reset()
        assert policy.resident_functions == set()

    def test_fingerprint_equivalence_with_custom_sizes_and_costs(self, small_split):
        function_ids = small_split.simulation.function_ids
        sizes = {fid: 2.0 for fid in function_ids[::3]}
        costs = {fid: 5.0 for fid in function_ids[::4]}
        results = [
            simulate_policy(
                factory(capacity=20, sizes=sizes, costs=costs),
                small_split.simulation,
                small_split.training,
                warmup_minutes=120,
                engine=engine,
            ).deterministic_fingerprint()
            for factory in (FaasCachePolicy, IndexedFaasCachePolicy)
            for engine in ("vectorized", "reference")
        ]
        assert len(set(results)) == 1
