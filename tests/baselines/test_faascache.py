"""Tests for the FaaSCache (GDSF) baseline."""

import pytest

from repro.baselines import FaasCachePolicy
from repro.traces import FunctionRecord


def prepared_policy(capacity, n_functions=10):
    policy = FaasCachePolicy(capacity=capacity)
    records = [FunctionRecord(f"f{i}", "a", "o") for i in range(n_functions)]
    policy.prepare(records)
    return policy


class TestFaasCache:
    def test_everything_kept_until_capacity(self):
        policy = prepared_policy(capacity=3)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert resident == {"f0", "f1", "f2"}

    def test_eviction_when_capacity_exceeded(self):
        policy = prepared_policy(capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert len(resident) == 2
        assert "f2" in resident

    def test_frequency_protects_hot_functions(self):
        policy = prepared_policy(capacity=2)
        for minute in range(5):
            policy.on_minute(minute, {"hot": 1})
        policy.on_minute(5, {"cold1": 1})
        resident = policy.on_minute(6, {"cold2": 1})
        assert "hot" in resident

    def test_clock_advances_on_eviction(self):
        policy = prepared_policy(capacity=1)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        assert policy._clock > 0  # eviction happened and the clock moved

    def test_never_evicts_below_capacity(self):
        policy = prepared_policy(capacity=100)
        for minute in range(10):
            policy.on_minute(minute, {f"f{minute}": 1})
        assert len(policy.resident_functions) == 10

    def test_default_capacity_derived_from_population(self):
        policy = FaasCachePolicy()
        records = [FunctionRecord(f"f{i}", "a", "o") for i in range(50)]
        policy.prepare(records)
        assert policy.capacity == 5

    def test_custom_sizes_respected(self):
        policy = FaasCachePolicy(capacity=3, sizes={"big": 3.0})
        policy.prepare([FunctionRecord("big", "a", "o"), FunctionRecord("small", "a", "o")])
        policy.on_minute(0, {"big": 1})
        resident = policy.on_minute(1, {"small": 1})
        assert len(resident) <= 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FaasCachePolicy(capacity=0)

    def test_reset_clears_cache(self):
        policy = prepared_policy(capacity=5)
        policy.on_minute(0, {"f0": 1})
        policy.reset()
        assert policy.resident_functions == set()
