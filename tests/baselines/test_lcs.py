"""Tests for the LCS (LRU warm container) baseline."""

import pytest

from repro.baselines import LcsPolicy
from repro.traces import FunctionRecord


def prepared_policy(keep_alive=30, capacity=None, n_functions=10):
    policy = LcsPolicy(keep_alive_minutes=keep_alive, capacity=capacity)
    policy.prepare([FunctionRecord(f"f{i}", "a", "o") for i in range(n_functions)])
    return policy


class TestLcs:
    def test_container_expires_after_keepalive(self):
        policy = prepared_policy(keep_alive=5, capacity=10)
        policy.on_minute(0, {"f0": 1})
        assert "f0" in policy.on_minute(4, {})
        assert "f0" not in policy.on_minute(5, {})

    def test_lru_eviction_when_over_capacity(self):
        policy = prepared_policy(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert resident == {"f1", "f2"}

    def test_recent_use_protects_from_lru(self):
        policy = prepared_policy(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        policy.on_minute(2, {"f0": 1})
        resident = policy.on_minute(3, {"f2": 1})
        assert "f0" in resident
        assert "f1" not in resident

    def test_default_capacity_from_population(self):
        policy = prepared_policy(n_functions=50)
        assert policy.capacity == 10

    @pytest.mark.parametrize("kwargs", [{"keep_alive_minutes": 0}, {"capacity": 0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LcsPolicy(**kwargs)

    def test_reset(self):
        policy = prepared_policy()
        policy.on_minute(0, {"f0": 1})
        policy.reset()
        assert policy.on_minute(1, {}) == set()
