"""Tests for the LCS (LRU warm container) baseline."""

import pytest

from repro.baselines import LcsPolicy
from repro.traces import FunctionRecord


def prepared_policy(keep_alive=30, capacity=None, n_functions=10):
    policy = LcsPolicy(keep_alive_minutes=keep_alive, capacity=capacity)
    policy.prepare([FunctionRecord(f"f{i}", "a", "o") for i in range(n_functions)])
    return policy


class TestLcs:
    def test_container_expires_after_keepalive(self):
        policy = prepared_policy(keep_alive=5, capacity=10)
        policy.on_minute(0, {"f0": 1})
        assert "f0" in policy.on_minute(4, {})
        assert "f0" not in policy.on_minute(5, {})

    def test_lru_eviction_when_over_capacity(self):
        policy = prepared_policy(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        resident = policy.on_minute(2, {"f2": 1})
        assert resident == {"f1", "f2"}

    def test_recent_use_protects_from_lru(self):
        policy = prepared_policy(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        policy.on_minute(2, {"f0": 1})
        resident = policy.on_minute(3, {"f2": 1})
        assert "f0" in resident
        assert "f1" not in resident

    def test_default_capacity_from_population(self):
        policy = prepared_policy(n_functions=50)
        assert policy.capacity == 10

    @pytest.mark.parametrize("kwargs", [{"keep_alive_minutes": 0}, {"capacity": 0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LcsPolicy(**kwargs)

    def test_reset(self):
        policy = prepared_policy()
        policy.on_minute(0, {"f0": 1})
        policy.reset()
        assert policy.on_minute(1, {}) == set()


class TestIndexedLcs:
    """Behavioural tests of the index-native twin, driven via the dict bridge.

    The full (engines × placements × workloads) fingerprint equivalence runs
    through the harness catalog (`tests/simulation/harness.py`: the ``lcs``
    pair); here the port's own mechanics are pinned directly — in particular
    the capacity-eviction tombstone, the one piece of state the dict twin
    gets for free by deleting map entries.
    """

    def _prepared(self, keep_alive=30, capacity=None, n_functions=10):
        import numpy as np

        from repro.baselines import IndexedLcsPolicy
        from repro.traces import Trace

        records = [FunctionRecord(f"f{i}", "a", "o") for i in range(n_functions)]
        counts = {f"f{i}": np.zeros(8, dtype=np.int64) for i in range(n_functions)}
        policy = IndexedLcsPolicy(keep_alive_minutes=keep_alive, capacity=capacity)
        policy.prepare(records)
        policy.bind_index(Trace(records, counts).invocation_index())
        return policy

    def test_container_expires_after_keepalive(self):
        policy = self._prepared(keep_alive=5, capacity=10)
        policy.on_minute(0, {"f0": 1})
        assert "f0" in policy.on_minute(4, {})
        assert "f0" not in policy.on_minute(5, {})

    def test_lru_eviction_when_over_capacity(self):
        policy = self._prepared(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        assert policy.on_minute(2, {"f2": 1}) == {"f1", "f2"}

    def test_capacity_eviction_is_a_tombstone_until_reinvocation(self):
        policy = self._prepared(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        policy.on_minute(2, {"f2": 1})  # evicts f0 under capacity
        # f0's keep-alive window is far from over, but the eviction must
        # stick: the dict twin deleted the entry outright.
        assert "f0" not in policy.on_minute(3, {})
        # A re-invocation (and f1 expendable) brings it back.
        assert "f0" in policy.on_minute(4, {"f0": 1})

    def test_default_capacity_from_population(self):
        policy = self._prepared(n_functions=10)
        assert policy.capacity == 2

    def test_shares_the_dict_twin_name(self):
        from repro.baselines import IndexedLcsPolicy

        assert IndexedLcsPolicy().name == LcsPolicy().name == "lcs"

    @pytest.mark.parametrize(
        "kwargs", [dict(keep_alive_minutes=0), dict(capacity=0)]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        from repro.baselines import IndexedLcsPolicy

        with pytest.raises(ValueError):
            IndexedLcsPolicy(**kwargs)

    def test_reset_clears_recency_and_tombstones(self):
        policy = self._prepared(keep_alive=100, capacity=2)
        policy.on_minute(0, {"f0": 1})
        policy.on_minute(1, {"f1": 1})
        policy.on_minute(2, {"f2": 1})
        policy.reset()
        assert policy.on_minute(0, {}) == set()
        assert policy.on_minute(1, {"f0": 1}) == {"f0"}
